// Property-based test: FlatFS under a random put/get/erase stream must
// agree with an unordered_map reference model, including across syncs,
// cross-client handoffs, and rehashes; fsck must stay clean throughout.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rand.h"
#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

class FlatFsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatFsPropertyTest, RandomOpsMatchReferenceModel) {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewClient();
  ASSERT_TRUE(client.ok());
  FlatFs::Options flat_options;
  flat_options.file_capacity = 8 << 10;
  FlatFs flat((*client)->fs(), flat_options);

  Rng rng(GetParam());
  std::unordered_map<std::string, std::string> model;

  auto random_key = [&] { return "key" + std::to_string(rng.Uniform(80)); };
  auto random_value = [&] {
    std::string value(1 + rng.Uniform(8000), '\0');
    for (auto& ch : value) {
      ch = static_cast<char>('0' + rng.Uniform(64));
    }
    return value;
  };

  for (int step = 0; step < 3000; ++step) {
    const std::string key = random_key();
    switch (rng.Uniform(6)) {
      case 0:
      case 1: {  // put
        const std::string value = random_value();
        ASSERT_TRUE(
            flat.Put(key, std::span<const char>(value.data(), value.size()))
                .ok())
            << key;
        model[key] = value;
        break;
      }
      case 2: {  // get
        auto value = flat.Get(key);
        auto it = model.find(key);
        if (it == model.end()) {
          EXPECT_EQ(value.code(), ErrorCode::kNotFound) << key;
        } else {
          ASSERT_TRUE(value.ok()) << key;
          EXPECT_EQ(*value, it->second) << key;
        }
        break;
      }
      case 3: {  // erase
        Status st = flat.Erase(key);
        if (model.count(key)) {
          EXPECT_TRUE(st.ok()) << key << ": " << st.ToString();
          model.erase(key);
        } else {
          EXPECT_EQ(st.code(), ErrorCode::kNotFound) << key;
        }
        break;
      }
      case 4: {  // exists
        auto exists = flat.Exists(key);
        ASSERT_TRUE(exists.ok());
        EXPECT_EQ(*exists, model.count(key) != 0) << key;
        break;
      }
      case 5: {  // occasional sync
        if (rng.Chance(1, 5)) {
          ASSERT_TRUE(flat.Sync().ok());
        }
        break;
      }
    }
  }

  // Scan must enumerate exactly the model's keys.
  ASSERT_TRUE(flat.Sync().ok());
  std::unordered_map<std::string, bool> seen;
  ASSERT_TRUE(flat.Scan([&](std::string_view key) {
                  seen[std::string(key)] = true;
                  return true;
                })
                  .ok());
  EXPECT_EQ(seen.size(), model.size());
  for (const auto& [key, value] : model) {
    EXPECT_TRUE(seen.count(key)) << key;
  }

  // A second client must observe the same state after lock handoff.
  auto client2 = (*sys)->NewClient();
  ASSERT_TRUE(client2.ok());
  FlatFs flat2((*client2)->fs(), flat_options);
  int checked = 0;
  for (const auto& [key, value] : model) {
    auto got = flat2.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
    if (++checked >= 20) {
      break;  // spot check; full scan above covered membership
    }
  }

  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->flat_files, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatFsPropertyTest,
                         ::testing::Values(7, 77, 777));

// Regression for the sustained-throughput collapse: the Webproxy conversion
// (erase one live key, put one fresh key, rewrite a hot "log" key, every
// iteration) must leave storage bounded — before the tombstone-recycling
// fix each hot-key rewrite cycle pushed the namespace collection toward a
// doubling rehash and the run exhausted the allocator within a few hundred
// iterations.
TEST(FlatFsChurnTest, SustainedWebproxyChurnKeepsStorageBounded) {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewClient();
  ASSERT_TRUE(client.ok());
  FlatFs::Options flat_options;
  flat_options.file_capacity = 16 << 10;
  FlatFs flat((*client)->fs(), flat_options);

  const std::string value(4096, 'v');
  std::vector<std::string> live;
  for (int f = 0; f < 64; ++f) {
    live.push_back("wp" + std::to_string(f));
    ASSERT_TRUE(
        flat.Put(live.back(), std::span<const char>(value.data(), value.size()))
            .ok());
  }
  ASSERT_TRUE(flat.Put("wplog", std::span<const char>("", 0)).ok());
  ASSERT_TRUE(flat.Sync().ok());
  const uint64_t free_after_prepare =
      (*sys)->volume()->allocator()->pages_free();

  Rng rng(11);
  uint64_t fresh = 0;
  for (int i = 0; i < 4000; ++i) {
    const uint64_t victim = rng.Uniform(live.size());
    ASSERT_TRUE(flat.Erase(live[victim]).ok()) << i;
    live[victim] = live.back();
    live.pop_back();
    live.push_back("wpn" + std::to_string(fresh++));
    ASSERT_TRUE(
        flat.Put(live.back(), std::span<const char>(value.data(), value.size()))
            .ok())
        << i;
    // Hot-key rewrite, as in the log append conversion.
    ASSERT_TRUE(flat.Put("wplog", std::span<const char>(value.data(), 512))
                    .ok())
        << i;
  }
  ASSERT_TRUE(flat.Sync().ok());

  // Live set is constant-size, so steady-state storage must be too. Allow
  // slack for the unshipped-victim window and per-client pools.
  const uint64_t free_now = (*sys)->volume()->allocator()->pages_free();
  const uint64_t pool_slack = 3000 * 4;  // client pools + pending victims
  EXPECT_GT(free_now + pool_slack, free_after_prepare)
      << "storage leaked across churn";

  // The server applied every op: nothing was rejected or dropped.
  EXPECT_EQ((*sys)->tfs()->ops_rejected(), 0u);

  // Every live key must still be readable with its full value.
  for (const auto& key : live) {
    auto got = flat.Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(got->size(), value.size()) << key;
  }

  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

}  // namespace
}  // namespace aerie
