// Unit tests for src/common: Status/Result, hashing, RNG, histogram.
#include <gtest/gtest.h>

#include <set>

#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/status.h"

namespace aerie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st(ErrorCode::kNotFound, "no such file");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not-found: no such file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status(ErrorCode::kBusy, "later"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBusy);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status(ErrorCode::kInvalidArgument, "odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  AERIE_ASSIGN_OR_RETURN(int h, Half(x));
  AERIE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).code(), ErrorCode::kInvalidArgument);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  // Sequential keys should land in many distinct buckets.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 1000; ++i) {
    buckets.insert(HashString("file" + std::to_string(i)) % 128);
  }
  EXPECT_GT(buckets.size(), 100u);
}

TEST(HashTest, Mix64IsBijectiveish) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  // Log-bucketed: ~1.6% relative resolution, allow slack.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000, 5000);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000, 8000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  // Merging per-thread histograms must equal one histogram that saw all
  // samples: same count, mean, extremes, and every percentile.
  Histogram combined, a, b;
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = 1 + rng.Next() % 1000000;
    combined.Record(v);
    ((i % 2 == 0) ? a : b).Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.Mean(), combined.Mean());
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(a.Percentile(p), combined.Percentile(p)) << "p=" << p;
  }
}

TEST(HistogramTest, MergeIntoEmptyAndWithEmpty) {
  Histogram empty, filled;
  filled.Record(500);
  filled.Record(700);
  Histogram target;
  target.Merge(filled);  // into empty
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 500u);
  EXPECT_EQ(target.max(), 700u);
  target.Merge(empty);  // with empty: unchanged
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 500u);
  EXPECT_EQ(target.max(), 700u);
}

TEST(HistogramTest, EmptyPercentilesAndJsonAreZero) {
  Histogram h;
  for (double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(h.Percentile(p), 0u) << "p=" << p;
  }
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  // The JSON summary of an empty histogram must be all-zero (the bench
  // schema requires numeric fields, never sentinel garbage from min_'s
  // ~0ULL initializer).
  EXPECT_EQ(h.ToJson(),
            "{\"count\":0,\"min\":0,\"mean\":0.0,\"p50\":0,"
            "\"p95\":0,\"p99\":0,\"max\":0}");
}

TEST(HistogramTest, SingleSamplePercentilesAreExact) {
  // One sample (one occupied bucket): every percentile is that value, not
  // the bucket midpoint (which sits above the value for wide buckets).
  for (uint64_t v : {0ull, 1ull, 4095ull, 1'000'000'007ull}) {
    Histogram h;
    h.Record(v);
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
      EXPECT_EQ(h.Percentile(p), v) << "v=" << v << " p=" << p;
    }
  }
}

TEST(HistogramTest, SingleBucketManySamples) {
  // Identical samples: percentile must stay pinned to the common value.
  Histogram h;
  for (int i = 0; i < 1000; ++i) {
    h.Record(77777);
  }
  EXPECT_EQ(h.Percentile(0), 77777u);
  EXPECT_EQ(h.Percentile(50), 77777u);
  EXPECT_EQ(h.Percentile(99.9), 77777u);
  EXPECT_EQ(h.Percentile(100), 77777u);
}

TEST(HistogramTest, TopBucketValuesClampToMax) {
  // Values in the highest major buckets (up to UINT64_MAX) must neither
  // index out of range nor report a percentile above the recorded maximum
  // (the top bucket's midpoint arithmetic runs close to the u64 edge).
  Histogram h;
  h.Record(~0ULL);
  h.Record(~0ULL - 1);
  h.Record(1ULL << 63);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~0ULL);
  for (double p : {50.0, 99.0, 100.0}) {
    EXPECT_GE(h.Percentile(p), h.min());
    EXPECT_LE(h.Percentile(p), h.max());
  }
  // Out-of-range p is clamped, not UB.
  EXPECT_EQ(h.Percentile(-5.0), h.min());
  EXPECT_EQ(h.Percentile(250.0), h.max());
}

TEST(HistogramTest, PercentileMonotonicAcrossBucketBoundaries) {
  // Samples straddling power-of-two bucket boundaries (the log-bucket major
  // edges) must still yield a monotone percentile curve clamped to
  // [min, max].
  Histogram h;
  for (uint64_t base : {1023u, 1024u, 1025u, 2047u, 2048u, 2049u, 4095u,
                        4096u, 65535u, 65536u, 65537u}) {
    for (int rep = 0; rep < 7; ++rep) {
      h.Record(base);
    }
  }
  uint64_t prev = 0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "percentile curve regressed at p=" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  EXPECT_EQ(h.Percentile(0), h.min());
  EXPECT_EQ(h.Percentile(100), h.max());
}

TEST(HistogramTest, ToJsonShape) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  const std::string json = h.ToJson();
  EXPECT_NE(json.find("\"count\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"min\":1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":100000"), std::string::npos) << json;
  for (const char* key : {"\"mean\":", "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << json;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');

  Histogram empty;
  EXPECT_NE(empty.ToJson().find("\"count\":0"), std::string::npos);
}

}  // namespace
}  // namespace aerie
