// Unit tests for src/common: Status/Result, hashing, RNG, histogram.
#include <gtest/gtest.h>

#include <set>

#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rand.h"
#include "src/common/status.h"

namespace aerie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kOk);
  EXPECT_EQ(st.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st(ErrorCode::kNotFound, "no such file");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), ErrorCode::kNotFound);
  EXPECT_EQ(st.ToString(), "not-found: no such file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status(ErrorCode::kBusy, "later"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code(), ErrorCode::kBusy);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status(ErrorCode::kInvalidArgument, "odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  AERIE_ASSIGN_OR_RETURN(int h, Half(x));
  AERIE_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_EQ(Quarter(6).code(), ErrorCode::kInvalidArgument);
}

TEST(HashTest, DeterministicAndSpread) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  // Sequential keys should land in many distinct buckets.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 1000; ++i) {
    buckets.insert(HashString("file" + std::to_string(i)) % 128);
  }
  EXPECT_GT(buckets.size(), 100u);
}

TEST(HashTest, Mix64IsBijectiveish) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    seen.insert(Mix64(i));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    const uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 100; ++v) {
    h.Record(v * 1000);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1000u);
  EXPECT_EQ(h.max(), 100000u);
  EXPECT_NEAR(h.Mean(), 50500.0, 1.0);
  // Log-bucketed: ~1.6% relative resolution, allow slack.
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50000, 5000);
  EXPECT_NEAR(static_cast<double>(h.Percentile(95)), 95000, 8000);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace aerie
