// Crash-recovery tests (paper §5.3.6): the WAL must finish committed-but-
// unapplied batches; orphans and stale pools must be reclaimed; unshipped
// client batches must vanish without hurting integrity.
#include <gtest/gtest.h>

#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/aerie_recovery_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".img";
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::unique_ptr<AerieSystem> Boot(bool fresh) {
    AerieSystem::Options options;
    options.region_bytes = 128ull << 20;
    options.region_path = path_;
    options.fresh = fresh;
    auto sys = AerieSystem::Create(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  std::string path_;
};

TEST_F(RecoveryTest, CommittedButUnappliedBatchReplays) {
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    LibFs* fs = (*client)->fs();
    ASSERT_TRUE(fs->clerk()
                    ->Acquire(fs->pxfs_root().lock_id(),
                              LockMode::kExclusiveHier)
                    .ok());
    fs->clerk()->Release(fs->pxfs_root().lock_id());
    auto pooled = fs->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(pooled.ok());

    MetaOp op;
    op.type = MetaOpType::kCreateFile;
    op.authority = fs->pxfs_root().lock_id();
    op.dir = fs->pxfs_root();
    op.name = "replayed.txt";
    op.obj = *pooled;

    // Crash between WAL commit and in-place apply.
    sys->tfs()->set_crash_after_log_commit(true);
    EXPECT_EQ(sys->tfs()->ApplyBatch((*client)->id(), EncodeBatch({op}))
                  .code(),
              ErrorCode::kUnavailable);
    (*client)->AbandonForCrashTest();
    // The file is NOT in the directory yet (apply never ran)...
    auto dir = Collection::Open(fs->read_context(), fs->pxfs_root());
    ASSERT_TRUE(dir.ok());
    EXPECT_EQ(dir->Lookup("replayed.txt").code(), ErrorCode::kNotFound);
  }
  {
    // ...but recovery replays the committed record.
    auto sys = Boot(/*fresh=*/false);
    OsdContext ctx = sys->volume()->context();
    auto dir = Collection::Open(ctx, sys->tfs()->GetRoots().pxfs_root);
    ASSERT_TRUE(dir.ok());
    auto found = dir->Lookup("replayed.txt");
    ASSERT_TRUE(found.ok());
    auto file = MFile::Open(ctx, Oid(*found));
    ASSERT_TRUE(file.ok());
    EXPECT_EQ(file->link_count(), 1u);
  }
}

TEST_F(RecoveryTest, AppliedStateSurvivesCleanRestart) {
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    ASSERT_TRUE(pxfs.Mkdir("/docs").ok());
    auto fd = pxfs.Open("/docs/note.txt", kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok());
    const std::string data = "survives restarts";
    ASSERT_TRUE(
        pxfs.Write(*fd, std::span<const char>(data.data(), data.size()))
            .ok());
    ASSERT_TRUE(pxfs.Close(*fd).ok());
    ASSERT_TRUE(pxfs.SyncAll().ok());
  }
  {
    auto sys = Boot(/*fresh=*/false);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    auto fd = pxfs.Open("/docs/note.txt", kOpenRead);
    ASSERT_TRUE(fd.ok());
    char buf[64] = {};
    auto n = pxfs.Read(*fd, std::span<char>(buf, sizeof(buf)));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string_view(buf, *n), "survives restarts");
    ASSERT_TRUE(pxfs.Close(*fd).ok());
  }
}

TEST_F(RecoveryTest, UnshippedClientBatchIsDiscarded) {
  {
    auto sys = Boot(/*fresh=*/true);
    LibFs::Options no_flusher;
    no_flusher.flush_interval_ms = 0;  // the batch must stay unshipped
    auto client = sys->NewClient(no_flusher);
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    ASSERT_TRUE(pxfs.Create("/lost.txt").ok());
    // Client "crashes" before syncing: batched create never ships.
    EXPECT_GT((*client)->fs()->pending_ops(), 0u);
    (*client)->AbandonForCrashTest();
  }
  {
    auto sys = Boot(/*fresh=*/false);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    EXPECT_EQ(pxfs.Stat("/lost.txt").code(), ErrorCode::kNotFound);
  }
}

TEST_F(RecoveryTest, StalePoolsReclaimedOnRecovery) {
  uint64_t free_after_bootstrap = 0;
  {
    auto sys = Boot(/*fresh=*/true);
    free_after_bootstrap = sys->volume()->allocator()->pages_free();
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    // Fill pools, then crash without consuming them.
    ASSERT_TRUE((*client)->fs()->TakePooled(ObjType::kMFile).ok());
    ASSERT_TRUE((*client)->fs()->TakePooled(ObjType::kExtent).ok());
    EXPECT_LT(sys->volume()->allocator()->pages_free(),
              free_after_bootstrap);
    (*client)->AbandonForCrashTest();
  }
  {
    auto sys = Boot(/*fresh=*/false);
    // All pre-allocated pool objects were returned.
    EXPECT_EQ(sys->volume()->allocator()->pages_free(),
              free_after_bootstrap);
  }
}

TEST_F(RecoveryTest, OrphanedOpenFilesReclaimedOnRecovery) {
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    ASSERT_TRUE(pxfs.Create("/orphan.txt").ok());
    auto fd = pxfs.Open("/orphan.txt", kOpenWrite);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(pxfs.Unlink("/orphan.txt").ok());
    ASSERT_TRUE(pxfs.SyncAll().ok());
    // Client crashes with the unlinked file still open.
    (*client)->AbandonForCrashTest();
  }
  {
    auto sys = Boot(/*fresh=*/false);
    // The orphan table is empty after recovery.
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs pxfs((*client)->fs());
    EXPECT_EQ(pxfs.Stat("/orphan.txt").code(), ErrorCode::kNotFound);
  }
}

TEST_F(RecoveryTest, DoubleRecoveryIsIdempotent) {
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    LibFs* fs = (*client)->fs();
    ASSERT_TRUE(fs->clerk()
                    ->Acquire(fs->pxfs_root().lock_id(),
                              LockMode::kExclusiveHier)
                    .ok());
    fs->clerk()->Release(fs->pxfs_root().lock_id());
    auto pooled = fs->TakePooled(ObjType::kMFile);
    ASSERT_TRUE(pooled.ok());
    MetaOp op;
    op.type = MetaOpType::kCreateFile;
    op.authority = fs->pxfs_root().lock_id();
    op.dir = fs->pxfs_root();
    op.name = "idem.txt";
    op.obj = *pooled;
    sys->tfs()->set_crash_after_log_commit(true);
    (void)sys->tfs()->ApplyBatch((*client)->id(), EncodeBatch({op}));
    (*client)->AbandonForCrashTest();
  }
  for (int boot = 0; boot < 2; ++boot) {
    auto sys = Boot(/*fresh=*/false);
    OsdContext ctx = sys->volume()->context();
    auto dir = Collection::Open(ctx, sys->tfs()->GetRoots().pxfs_root);
    ASSERT_TRUE(dir.ok());
    EXPECT_TRUE(dir->Lookup("idem.txt").ok()) << "boot " << boot;
    uint64_t count = 0;
    (void)dir->Scan([&](std::string_view, uint64_t) {
      count++;
      return true;
    });
    EXPECT_EQ(count, 1u);
  }
}

}  // namespace
}  // namespace aerie
