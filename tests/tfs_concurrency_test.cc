// Concurrency tests for the TFS: parallel batches from independent clients
// in disjoint directories (paper §7.2.3's scaling premise), WAL
// checkpointing under load, and pool isolation between clients.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

TEST(TfsConcurrencyTest, ParallelClientsInDisjointDirectories) {
  AerieSystem::Options options;
  options.region_bytes = 1ull << 30;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());

  constexpr int kClients = 4;
  constexpr int kFilesEach = 60;
  struct ClientCtx {
    std::unique_ptr<AerieSystem::Client> client;
    std::unique_ptr<Pxfs> fs;
  };
  std::vector<ClientCtx> clients;
  for (int c = 0; c < kClients; ++c) {
    auto client = (*sys)->NewClient();
    ASSERT_TRUE(client.ok());
    ClientCtx ctx;
    ctx.client = std::move(*client);
    ctx.fs = std::make_unique<Pxfs>(ctx.client->fs());
    ASSERT_TRUE(ctx.fs->Mkdir("/c" + std::to_string(c)).ok());
    clients.push_back(std::move(ctx));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Pxfs* fs = clients[static_cast<size_t>(c)].fs.get();
      const std::string dir = "/c" + std::to_string(c);
      for (int i = 0; i < kFilesEach; ++i) {
        const std::string path = dir + "/f" + std::to_string(i);
        auto fd = fs->Open(path, kOpenCreate | kOpenWrite);
        if (!fd.ok()) {
          failures++;
          continue;
        }
        const std::string data = path + " payload";
        if (!fs->Write(*fd, std::span<const char>(data.data(), data.size()))
                 .ok() ||
            !fs->Close(*fd).ok()) {
          failures++;
        }
        if (i % 7 == 0 && !fs->SyncAll().ok()) {
          failures++;
        }
      }
      if (!fs->SyncAll().ok()) {
        failures++;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // Every client's files exist with intact content; volume is sound.
  for (int c = 0; c < kClients; ++c) {
    Pxfs* fs = clients[static_cast<size_t>(c)].fs.get();
    for (int i = 0; i < kFilesEach; ++i) {
      const std::string path =
          "/c" + std::to_string(c) + "/f" + std::to_string(i);
      auto fd = fs->Open(path, kOpenRead);
      ASSERT_TRUE(fd.ok()) << path;
      std::string buf(256, '\0');
      auto n = fs->Read(*fd, std::span<char>(buf.data(), buf.size()));
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(std::string_view(buf.data(), *n), path + " payload");
      ASSERT_TRUE(fs->Close(*fd).ok());
    }
  }
  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files,
            static_cast<uint64_t>(kClients * kFilesEach));
}

TEST(TfsConcurrencyTest, WalCheckpointsUnderSustainedLoad) {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewClient(LibFs::Options{.eager_ship = true});
  ASSERT_TRUE(client.ok());
  Pxfs fs((*client)->fs());
  ASSERT_TRUE(fs.Mkdir("/load").ok());

  // Many eager batches: the WAL must checkpoint (truncate) between them
  // rather than accumulate.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(fs.Create("/load/f" + std::to_string(i)).ok()) << i;
  }
  EXPECT_EQ((*sys)->volume()->log()->committed_bytes(), 0u)
      << "WAL did not checkpoint";
  // And the log area is far smaller than the op volume that flowed through.
  EXPECT_GT((*sys)->tfs()->batches_applied(), 400u);
}

TEST(TfsConcurrencyTest, PoolsAreClientPrivate) {
  AerieSystem::Options options;
  options.region_bytes = 256ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto c1 = (*sys)->NewClient();
  auto c2 = (*sys)->NewClient();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());

  // Concurrent pool fills never hand out the same object twice.
  std::vector<Oid> a;
  std::vector<Oid> b;
  std::thread t1([&] {
    for (int i = 0; i < 300; ++i) {
      auto oid = (*c1)->fs()->TakePooled(ObjType::kExtent);
      if (oid.ok()) {
        a.push_back(*oid);
      }
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 300; ++i) {
      auto oid = (*c2)->fs()->TakePooled(ObjType::kExtent);
      if (oid.ok()) {
        b.push_back(*oid);
      }
    }
  });
  t1.join();
  t2.join();
  ASSERT_EQ(a.size(), 300u);
  ASSERT_EQ(b.size(), 300u);
  std::set<uint64_t> seen;
  for (Oid oid : a) {
    EXPECT_TRUE(seen.insert(oid.raw()).second);
  }
  for (Oid oid : b) {
    EXPECT_TRUE(seen.insert(oid.raw()).second);
  }
}

}  // namespace
}  // namespace aerie
