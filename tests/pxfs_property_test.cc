// Property-based test: PXFS under a random op stream must agree with an
// in-memory reference model (map of path -> contents), across seeds, with
// periodic syncs, client handoffs, and a final fsck.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/common/rand.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

class PxfsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PxfsPropertyTest, RandomOpsMatchReferenceModel) {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewClient();
  ASSERT_TRUE(client.ok());
  Pxfs fs((*client)->fs());

  Rng rng(GetParam());
  std::map<std::string, std::string> model;  // path -> contents
  const int kDirs = 4;
  for (int d = 0; d < kDirs; ++d) {
    ASSERT_TRUE(fs.Mkdir("/d" + std::to_string(d)).ok());
  }

  auto random_path = [&] {
    return "/d" + std::to_string(rng.Uniform(kDirs)) + "/f" +
           std::to_string(rng.Uniform(30));
  };
  auto read_all = [&](const std::string& path) -> Result<std::string> {
    auto fd = fs.Open(path, kOpenRead);
    if (!fd.ok()) {
      return fd.status();
    }
    std::string buf(64 << 10, '\0');
    auto n = fs.Read(*fd, std::span<char>(buf.data(), buf.size()));
    EXPECT_TRUE(fs.Close(*fd).ok());
    if (!n.ok()) {
      return n.status();
    }
    buf.resize(*n);
    return buf;
  };

  for (int step = 0; step < 1200; ++step) {
    const std::string path = random_path();
    switch (rng.Uniform(8)) {
      case 0:
      case 1: {  // write whole file
        std::string data(1 + rng.Uniform(20000), '\0');
        for (auto& ch : data) {
          ch = static_cast<char>('a' + rng.Uniform(26));
        }
        auto fd = fs.Open(path, kOpenCreate | kOpenWrite | kOpenTrunc);
        ASSERT_TRUE(fd.ok()) << path;
        ASSERT_TRUE(
            fs.Write(*fd, std::span<const char>(data.data(), data.size()))
                .ok());
        ASSERT_TRUE(fs.Close(*fd).ok());
        model[path] = data;
        break;
      }
      case 2: {  // append
        auto it = model.find(path);
        if (it == model.end()) {
          break;
        }
        std::string data(1 + rng.Uniform(4000), 'A');
        auto fd = fs.Open(path, kOpenWrite | kOpenAppend);
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(
            fs.Write(*fd, std::span<const char>(data.data(), data.size()))
                .ok());
        ASSERT_TRUE(fs.Close(*fd).ok());
        it->second += data;
        break;
      }
      case 3: {  // read + compare
        auto content = read_all(path);
        auto it = model.find(path);
        if (it == model.end()) {
          EXPECT_EQ(content.code(), ErrorCode::kNotFound) << path;
        } else {
          ASSERT_TRUE(content.ok()) << path;
          EXPECT_EQ(*content, it->second) << path;
        }
        break;
      }
      case 4: {  // unlink
        Status st = fs.Unlink(path);
        if (model.count(path)) {
          EXPECT_TRUE(st.ok()) << path << ": " << st.ToString();
          model.erase(path);
        } else {
          EXPECT_EQ(st.code(), ErrorCode::kNotFound);
        }
        break;
      }
      case 5: {  // rename
        const std::string to = random_path();
        Status st = fs.Rename(path, to);
        if (!model.count(path)) {
          EXPECT_FALSE(st.ok());
        } else if (path == to) {
          EXPECT_TRUE(st.ok());  // POSIX no-op
        } else {
          EXPECT_TRUE(st.ok()) << path << " -> " << to;
          model[to] = model[path];
          model.erase(path);
        }
        break;
      }
      case 6: {  // truncate to random size
        auto it = model.find(path);
        if (it == model.end()) {
          break;
        }
        const uint64_t size = rng.Uniform(it->second.size() + 100);
        ASSERT_TRUE(fs.Truncate(path, size).ok());
        if (size <= it->second.size()) {
          it->second.resize(size);
        } else {
          it->second.resize(size, '\0');
        }
        break;
      }
      case 7: {  // stat + occasional sync
        auto st = fs.Stat(path);
        auto it = model.find(path);
        if (it == model.end()) {
          EXPECT_EQ(st.code(), ErrorCode::kNotFound);
        } else {
          ASSERT_TRUE(st.ok());
          EXPECT_EQ(st->size, it->second.size()) << path;
        }
        if (rng.Chance(1, 10)) {
          ASSERT_TRUE(fs.SyncAll().ok());
        }
        break;
      }
    }
  }

  // Everything the model holds must be readable with identical bytes.
  ASSERT_TRUE(fs.SyncAll().ok());
  for (const auto& [path, contents] : model) {
    auto got = read_all(path);
    ASSERT_TRUE(got.ok()) << path;
    EXPECT_EQ(*got, contents) << path;
  }
  // And the volume must be structurally sound.
  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->files, model.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PxfsPropertyTest,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace aerie
