// Deterministic fuzzing of every parser that consumes untrusted bytes: the
// wire reader, the metadata-op batch decoder, and the TFS's ApplyBatch
// (which must reject arbitrary garbage without crashing or corrupting).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/common/rand.h"
#include "src/libfs/system.h"
#include "src/tfs/fsck.h"
#include "src/tfs/ops.h"

namespace aerie {
namespace {

// Round budget, scaled by AERIE_FUZZ_SCALE (nightly CI runs a multiple of
// the per-commit budget; see .github/workflows/crash-matrix.yml).
int FuzzRounds(int base) {
  if (const char* scale = std::getenv("AERIE_FUZZ_SCALE")) {
    const long v = std::strtol(scale, nullptr, 10);
    if (v > 0) {
      return static_cast<int>(base * v);
    }
  }
  return base;
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string out(rng->Uniform(max_len + 1), '\0');
  for (auto& ch : out) {
    ch = static_cast<char>(rng->Next());
  }
  return out;
}

TEST(FuzzTest, WireReaderNeverOverreads) {
  Rng rng(1);
  for (int round = 0; round < FuzzRounds(5000); ++round) {
    const std::string bytes = RandomBytes(&rng, 64);
    WireReader reader(bytes);
    // Interleave random read kinds; every result must be bounds-checked.
    for (int i = 0; i < 8; ++i) {
      switch (rng.Uniform(5)) {
        case 0:
          (void)reader.ReadU8();
          break;
        case 1:
          (void)reader.ReadU16();
          break;
        case 2:
          (void)reader.ReadU32();
          break;
        case 3:
          (void)reader.ReadU64();
          break;
        case 4: {
          auto s = reader.ReadString();
          if (s.ok()) {
            // The view must lie within the buffer.
            ASSERT_GE(s->data(), bytes.data());
            ASSERT_LE(s->data() + s->size(), bytes.data() + bytes.size());
          }
          break;
        }
      }
    }
  }
}

TEST(FuzzTest, DecodeBatchRejectsGarbageGracefully) {
  Rng rng(2);
  int accepted = 0;
  for (int round = 0; round < FuzzRounds(5000); ++round) {
    const std::string bytes = RandomBytes(&rng, 256);
    auto ops = DecodeBatch(bytes);
    if (ops.ok()) {
      accepted++;  // structurally valid garbage is fine; semantics rejected later
    }
  }
  // Random bytes should essentially never parse as a valid batch.
  EXPECT_LT(accepted, 50);
}

TEST(FuzzTest, DecodeBatchHandlesTruncationsOfValidBatch) {
  // A valid batch, chopped at every length: no crash, prefix-or-error.
  MetaOp op;
  op.type = MetaOpType::kCreateFile;
  op.authority = 42;
  op.dir = Oid::Make(ObjType::kCollection, 4096);
  op.name = "victim-name";
  op.obj = Oid::Make(ObjType::kMFile, 8192);
  const std::string blob = EncodeBatch({op, op, op});
  for (size_t len = 0; len < blob.size(); ++len) {
    auto ops = DecodeBatch(blob.substr(0, len));
    EXPECT_FALSE(ops.ok()) << "truncated length " << len;
  }
  auto full = DecodeBatch(blob);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 3u);
}

TEST(FuzzTest, ApplyBatchSurvivesGarbageAndMaliciousOps) {
  AerieSystem::Options options;
  options.region_bytes = 256ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok());
  auto client = (*sys)->NewClient();
  ASSERT_TRUE(client.ok());
  LibFs* fs = (*client)->fs();

  Rng rng(3);
  // Raw garbage.
  for (int round = 0; round < FuzzRounds(500); ++round) {
    const std::string bytes = RandomBytes(&rng, 512);
    (void)(*sys)->tfs()->ApplyBatch((*client)->id(), bytes);
  }
  // Structurally valid but semantically hostile ops: forged OIDs, absent
  // locks, bogus extents, enormous sizes.
  ASSERT_TRUE(fs->clerk()
                  ->Acquire(fs->pxfs_root().lock_id(),
                            LockMode::kExclusiveHier)
                  .ok());
  fs->clerk()->Release(fs->pxfs_root().lock_id());
  for (int round = 0; round < FuzzRounds(500); ++round) {
    MetaOp op;
    op.type = static_cast<MetaOpType>(rng.Uniform(14));
    op.authority = rng.Chance(1, 2) ? fs->pxfs_root().lock_id() : rng.Next();
    op.dir = rng.Chance(1, 2) ? fs->pxfs_root()
                              : Oid(rng.Next());
    op.dir2 = Oid(rng.Next());
    op.name = "f" + std::to_string(rng.Uniform(10));
    op.name2 = "g" + std::to_string(rng.Uniform(10));
    op.obj = Oid(rng.Next());
    op.a = rng.Next();
    op.b = rng.Next();
    // Forge "server-enriched" fields too: the server must recompute them.
    op.victim = Oid(rng.Next());
    op.victim_links = rng.Next();
    op.victim_free = static_cast<uint8_t>(rng.Uniform(2));
    (void)(*sys)->tfs()->ApplyBatch((*client)->id(), EncodeBatch({op}));
  }

  // After the assault, the volume must still be structurally sound and
  // fully usable.
  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();

  auto pooled = fs->TakePooled(ObjType::kMFile);
  ASSERT_TRUE(pooled.ok());
  MetaOp good;
  good.type = MetaOpType::kCreateFile;
  good.authority = fs->pxfs_root().lock_id();
  good.dir = fs->pxfs_root();
  good.name = "survivor";
  good.obj = *pooled;
  EXPECT_TRUE(
      (*sys)->tfs()->ApplyBatch((*client)->id(), EncodeBatch({good})).ok());
}

}  // namespace
}  // namespace aerie
