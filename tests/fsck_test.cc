// Tests for the volume integrity checker.
#include <gtest/gtest.h>

#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/flatfs/flatfs.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto client = sys_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
  }

  void TearDown() override {
    client_.reset();
    sys_.reset();
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
};

TEST_F(FsckTest, FreshVolumeIsClean) {
  auto report = RunFsck(sys_->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->directories, 1u);  // just the root
}

TEST_F(FsckTest, PopulatedVolumeIsClean) {
  Pxfs pxfs(client_->fs());
  ASSERT_TRUE(pxfs.Mkdir("/a").ok());
  ASSERT_TRUE(pxfs.Mkdir("/a/b").ok());
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/a/b/f" + std::to_string(i);
    auto fd = pxfs.Open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok());
    const std::string data(3000, 'x');
    ASSERT_TRUE(
        pxfs.Write(*fd, std::span<const char>(data.data(), data.size()))
            .ok());
    ASSERT_TRUE(pxfs.Close(*fd).ok());
  }
  ASSERT_TRUE(pxfs.Link("/a/b/f0", "/a/alias").ok());
  FlatFs flat(client_->fs());
  for (int i = 0; i < 10; ++i) {
    const std::string value = "value";
    ASSERT_TRUE(flat.Put("k" + std::to_string(i),
                         std::span<const char>(value.data(), value.size()))
                    .ok());
  }
  ASSERT_TRUE(pxfs.SyncAll().ok());

  auto report = RunFsck(sys_->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->directories, 3u);  // /, /a, /a/b
  EXPECT_EQ(report->files, 20u);       // 20 objects (one hard-linked twice)
  EXPECT_EQ(report->flat_files, 10u);
}

TEST_F(FsckTest, DetectsBadLinkCount) {
  Pxfs pxfs(client_->fs());
  ASSERT_TRUE(pxfs.Create("/victim").ok());
  ASSERT_TRUE(pxfs.SyncAll().ok());

  // Corrupt the link count behind the TFS's back.
  auto dir = Collection::Open(sys_->volume()->context(),
                              sys_->tfs()->GetRoots().pxfs_root);
  ASSERT_TRUE(dir.ok());
  auto oid = dir->Lookup("victim");
  ASSERT_TRUE(oid.ok());
  auto file = MFile::Open(sys_->volume()->context(), Oid(*oid));
  ASSERT_TRUE(file.ok());
  file->SetLinkCount(7);

  auto report = RunFsck(sys_->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  EXPECT_GE(report->errors, 1u);
}

TEST_F(FsckTest, DetectsDanglingDirectoryEntry) {
  Pxfs pxfs(client_->fs());
  ASSERT_TRUE(pxfs.Create("/dangle").ok());
  ASSERT_TRUE(pxfs.SyncAll().ok());

  // Destroy the file's storage without removing the directory entry.
  auto dir = Collection::Open(sys_->volume()->context(),
                              sys_->tfs()->GetRoots().pxfs_root);
  ASSERT_TRUE(dir.ok());
  auto oid = dir->Lookup("dangle");
  ASSERT_TRUE(oid.ok());
  auto file = MFile::Open(sys_->volume()->context(), Oid(*oid));
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Destroy().ok());

  auto report = RunFsck(sys_->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST_F(FsckTest, CountsOrphansAndPools) {
  Pxfs pxfs(client_->fs());
  ASSERT_TRUE(pxfs.Create("/will_orphan").ok());
  auto fd = pxfs.Open("/will_orphan", kOpenRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(pxfs.Unlink("/will_orphan").ok());
  ASSERT_TRUE(pxfs.SyncAll().ok());
  // fd still open: the file sits in the orphan table.
  auto report = RunFsck(sys_->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
  EXPECT_EQ(report->orphans, 1u);
  EXPECT_GT(report->pool_objects, 0u);  // the client's unconsumed pool
  ASSERT_TRUE(pxfs.Close(*fd).ok());
}

}  // namespace
}  // namespace aerie
