// Tests for the collection object: insert/lookup/erase/scan, tombstones,
// growth and compaction rehash, bucket-extent lock mapping.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/osd/collection.h"
#include "src/osd/volume.h"

namespace aerie {
namespace {

class CollectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(64 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    auto volume = Volume::Format(region_.get(), 0, region_->size(),
                                 Volume::Options{.log_bytes = 1 << 20});
    ASSERT_TRUE(volume.ok());
    volume_ = std::move(*volume);
    ctx_ = volume_->context();
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<Volume> volume_;
  OsdContext ctx_;
};

TEST_F(CollectionTest, CreateOpenRoundTrip) {
  auto coll = Collection::Create(ctx_, 42);
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ(coll->acl(), 42u);
  EXPECT_EQ(coll->size(), 0u);
  auto reopened = Collection::Open(ctx_, coll->oid());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->oid(), coll->oid());
}

TEST_F(CollectionTest, OpenRejectsWrongTypeAndGarbage) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ(Collection::Open(
                ctx_, Oid::Make(ObjType::kMFile, coll->oid().offset()))
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(Collection::Open(ctx_, Oid::Make(ObjType::kCollection,
                                             volume_->partition_offset() +
                                                 (1 << 26)))
                .code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(CollectionTest, InsertLookupErase) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  EXPECT_TRUE(coll->Insert("alpha", 111).ok());
  EXPECT_TRUE(coll->Insert("beta", 222).ok());
  EXPECT_EQ(*coll->Lookup("alpha"), 111u);
  EXPECT_EQ(*coll->Lookup("beta"), 222u);
  EXPECT_EQ(coll->Lookup("gamma").code(), ErrorCode::kNotFound);
  EXPECT_EQ(coll->size(), 2u);

  EXPECT_TRUE(coll->Erase("alpha").ok());
  EXPECT_EQ(coll->Lookup("alpha").code(), ErrorCode::kNotFound);
  EXPECT_EQ(coll->size(), 1u);
  EXPECT_EQ(coll->tombstones(), 1u);
  EXPECT_EQ(coll->Erase("alpha").code(), ErrorCode::kNotFound);
}

TEST_F(CollectionTest, DuplicateInsertRejected) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  EXPECT_TRUE(coll->Insert("key", 1).ok());
  EXPECT_EQ(coll->Insert("key", 2).code(), ErrorCode::kAlreadyExists);
  EXPECT_EQ(*coll->Lookup("key"), 1u);
}

TEST_F(CollectionTest, PutOverwrites) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  EXPECT_TRUE(coll->Put("key", 1).ok());
  EXPECT_TRUE(coll->Put("key", 2).ok());
  EXPECT_EQ(*coll->Lookup("key"), 2u);
  EXPECT_EQ(coll->size(), 1u);
}

TEST_F(CollectionTest, KeyValidation) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  EXPECT_EQ(coll->Insert("", 1).code(), ErrorCode::kInvalidArgument);
  const std::string too_long(Collection::kMaxKeyLen + 1, 'x');
  EXPECT_EQ(coll->Insert(too_long, 1).code(), ErrorCode::kInvalidArgument);
  const std::string max_len(Collection::kMaxKeyLen, 'x');
  EXPECT_TRUE(coll->Insert(max_len, 1).ok());
  EXPECT_EQ(*coll->Lookup(max_len), 1u);
}

TEST_F(CollectionTest, BinaryKeysSupported) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  const std::string key("\x00\x01\xff\x7f", 4);
  EXPECT_TRUE(coll->Insert(key, 99).ok());
  EXPECT_EQ(*coll->Lookup(key), 99u);
}

TEST_F(CollectionTest, GrowthRehashPreservesAllEntries) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  const uint64_t initial_buckets = coll->nbuckets();
  constexpr int kCount = 2000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        coll->Insert("file" + std::to_string(i), 1000 + i).ok())
        << i;
  }
  EXPECT_GT(coll->nbuckets(), initial_buckets);
  EXPECT_EQ(coll->size(), static_cast<uint64_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    auto v = coll->Lookup("file" + std::to_string(i));
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_EQ(*v, static_cast<uint64_t>(1000 + i));
  }
  EXPECT_TRUE(coll->Validate().ok());
}

TEST_F(CollectionTest, TombstoneCompactionReclaims) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(coll->Insert("k" + std::to_string(i), i).ok());
    }
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(coll->Erase("k" + std::to_string(i)).ok());
    }
  }
  // Compaction must have kept tombstones bounded.
  EXPECT_LT(coll->tombstones(), 2000u);
  EXPECT_EQ(coll->size(), 0u);
  EXPECT_TRUE(coll->Validate().ok());
}

TEST_F(CollectionTest, ScanVisitsExactlyLiveEntries) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(coll->Insert("s" + std::to_string(i), i).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(coll->Erase("s" + std::to_string(i * 2)).ok());
  }
  std::map<std::string, uint64_t> seen;
  EXPECT_TRUE(coll->Scan([&](std::string_view key, uint64_t value) {
                  seen[std::string(key)] = value;
                  return true;
                })
                  .ok());
  EXPECT_EQ(seen.size(), 50u);
  for (const auto& [key, value] : seen) {
    EXPECT_EQ(key, "s" + std::to_string(value));
    EXPECT_EQ(value % 2, 1u);
  }
}

TEST_F(CollectionTest, ScanEarlyStop) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(coll->Insert("e" + std::to_string(i), i).ok());
  }
  int visited = 0;
  EXPECT_TRUE(coll->Scan([&](std::string_view, uint64_t) {
                  return ++visited < 5;
                })
                  .ok());
  EXPECT_EQ(visited, 5);
}

TEST_F(CollectionTest, BucketExtentMappingIsStableForKey) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  auto a1 = coll->BucketExtentForKey("somekey");
  auto a2 = coll->BucketExtentForKey("somekey");
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(*a1, *a2);
  EXPECT_EQ(a1->type(), ObjType::kExtent);
  const auto extents = coll->BucketExtents();
  EXPECT_EQ(extents.size(), coll->nbuckets() / 8);
}

TEST_F(CollectionTest, ParentAndLinkCountPersist) {
  auto parent = Collection::Create(ctx_, 0);
  auto child = Collection::Create(ctx_, 0);
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(child.ok());
  child->SetParentOid(parent->oid());
  child->SetLinkCount(1);
  auto reopened = Collection::Open(ctx_, child->oid());
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->parent_oid(), parent->oid());
  EXPECT_EQ(reopened->link_count(), 1u);
}

TEST_F(CollectionTest, DestroyReleasesStorage) {
  const uint64_t free_before = ctx_.alloc->pages_free();
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(coll->Insert("d" + std::to_string(i), i).ok());
  }
  EXPECT_LT(ctx_.alloc->pages_free(), free_before);
  EXPECT_TRUE(coll->Destroy().ok());
  EXPECT_EQ(ctx_.alloc->pages_free(), free_before);
  EXPECT_EQ(Collection::Open(ctx_, coll->oid()).code(),
            ErrorCode::kCorrupted);
}

TEST_F(CollectionTest, ReadOnlyContextCannotMutate) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE(coll->Insert("visible", 7).ok());

  OsdContext ro{ctx_.region, nullptr};
  auto client_view = Collection::Open(ro, coll->oid());
  ASSERT_TRUE(client_view.ok());
  EXPECT_EQ(*client_view->Lookup("visible"), 7u);  // direct read OK
  EXPECT_EQ(client_view->Insert("nope", 1).code(),
            ErrorCode::kPermissionDenied);
  EXPECT_EQ(client_view->Erase("visible").code(),
            ErrorCode::kPermissionDenied);
}

// Regression: a hot key erased and reinserted every "iteration" (the FlatFS
// log object's get/modify/put pattern) must recycle its tombstoned slot
// instead of filling the bucket and forcing table growth. Before the fix,
// this pattern doubled the table every ~15 cycles until the allocator was
// exhausted.
TEST_F(CollectionTest, HotKeyChurnDoesNotGrowTable) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE(coll->Insert("hot", 0).ok());
  const uint64_t buckets_before = coll->nbuckets();
  const uint64_t free_before = ctx_.alloc->pages_free();
  for (int i = 1; i <= 5000; ++i) {
    ASSERT_TRUE(coll->Erase("hot").ok()) << i;
    ASSERT_TRUE(coll->Insert("hot", i).ok()) << i;
  }
  EXPECT_EQ(*coll->Lookup("hot"), 5000u);
  EXPECT_EQ(coll->nbuckets(), buckets_before);
  EXPECT_EQ(ctx_.alloc->pages_free(), free_before);
  EXPECT_EQ(coll->size(), 1u);
}

// Regression: sustained erase-one/insert-one churn across a whole fileset
// (the Webproxy conversion) must keep storage bounded near the live size.
TEST_F(CollectionTest, FilesetChurnKeepsStorageBounded) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  std::vector<std::string> live;
  for (int f = 0; f < 64; ++f) {
    live.push_back("f" + std::to_string(f));
    ASSERT_TRUE(coll->Insert(live.back(), f).ok());
  }
  const uint64_t buckets_start = coll->nbuckets();
  Rng rng(7);
  uint64_t fresh = 0;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t victim = rng.Uniform(live.size());
    ASSERT_TRUE(coll->Erase(live[victim]).ok()) << i;
    live[victim] = live.back();
    live.pop_back();
    live.push_back("n" + std::to_string(fresh++));
    ASSERT_TRUE(coll->Insert(live.back(), i).ok()) << i;
  }
  EXPECT_EQ(coll->size(), 64u);
  // Live size never exceeds 64, so the table may compact but not balloon.
  EXPECT_LE(coll->nbuckets(), buckets_start * 2);
  for (const auto& key : live) {
    EXPECT_TRUE(coll->Lookup(key).ok()) << key;
  }
}

// A recycled tombstone slot must not resurrect under a reader that races
// the commit discipline: after erase the key reads not-found, after the
// reinsert it reads the new value, and the slot count stays exact.
TEST_F(CollectionTest, TombstoneReuseKeepsCountsExact) {
  auto coll = Collection::Create(ctx_, 0);
  ASSERT_TRUE(coll.ok());
  ASSERT_TRUE(coll->Insert("a", 1).ok());
  ASSERT_TRUE(coll->Insert("b", 2).ok());
  ASSERT_TRUE(coll->Erase("a").ok());
  EXPECT_EQ(coll->size(), 1u);
  EXPECT_EQ(coll->tombstones(), 1u);
  // Reinserting the same key lands in the same bucket and must recycle the
  // tombstoned slot, dropping the tombstone count back to zero.
  ASSERT_TRUE(coll->Insert("a", 3).ok());
  EXPECT_EQ(coll->size(), 2u);
  EXPECT_EQ(coll->tombstones(), 0u);
  EXPECT_EQ(*coll->Lookup("a"), 3u);
  EXPECT_EQ(*coll->Lookup("b"), 2u);
}

}  // namespace
}  // namespace aerie
