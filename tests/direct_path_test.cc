// Zero-RPC direct data path (DESIGN.md §10). Three layers:
//
//  * DirectPathTest.*: functional coverage — warmed reads and aligned
//    in-place overwrites run against the cached extent map (counters
//    advance, results match the locked path), appends/extends fall back,
//    revocation by a second client bumps the direct epoch and forces the
//    locked path, and a concurrent reader never observes a torn page.
//  * DirectPathCrashTest.CleanSweep*: the crash simulator enumerates states
//    across a direct overwrite and across a revoke-triggered batch ship on a
//    shared directory; every image must recover consistently.
//  * DirectPathCrashTest.Detects*: mutation mode — suppressing the direct
//    write's registered BFlush site must be caught by a commit-marker
//    content oracle (acknowledged direct overwrites whose bytes never left
//    the WC buffers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/open_flags.h"
#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/osd/mfile.h"
#include "src/pxfs/pxfs.h"
#include "src/scm/crash_sim.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

constexpr uint64_t kPage = 4096;

LibFs::Options EagerClientOptions() {
  LibFs::Options options;
  options.eager_ship = true;
  options.flush_interval_ms = 0;
  options.pool_low_water = 4;
  options.pool_refill = 64;
  return options;
}

std::span<const char> Bytes(const std::string& s) {
  return std::span<const char>(s.data(), s.size());
}

// --- Functional -----------------------------------------------------------

class DirectPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 64ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    sys_ = std::move(*sys);
    auto client = sys_->NewClient(EagerClientOptions());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    client_ = std::move(*client);
    fs_ = std::make_unique<Pxfs>(client_->fs());
    ASSERT_TRUE(fs_->Mkdir("/d").ok());
  }

  // Creates `path` with `pages` pages of `fill` through the locked path.
  void MakeFile(const std::string& path, int pages, char fill) {
    auto fd = fs_->Open(path, kOpenCreate | kOpenWrite);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    const std::string data(pages * kPage, fill);
    auto n = fs_->Write(*fd, Bytes(data));
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, data.size());
    ASSERT_TRUE(fs_->Close(*fd).ok());
  }

  LibFs* libfs() { return client_->fs(); }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
  std::unique_ptr<Pxfs> fs_;
};

TEST_F(DirectPathTest, WarmedReadsServeFromCachedMap) {
  MakeFile("/d/r", 2, 'a');
  auto fd = fs_->Open("/d/r", kOpenRead);
  ASSERT_TRUE(fd.ok());
  std::string buf(2 * kPage, '\0');

  // First read takes the locked path and warms the map.
  auto n = fs_->Pread(*fd, 0, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, buf.size());
  const uint64_t before = libfs()->direct_read_bytes();

  n = fs_->Pread(*fd, 0, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, buf.size());
  EXPECT_EQ(buf, std::string(2 * kPage, 'a'));
  EXPECT_EQ(libfs()->direct_read_bytes(), before + buf.size());

  // Partial read from an interior offset through the same map.
  std::string tail(kPage, '\0');
  n = fs_->Pread(*fd, kPage, std::span<char>(tail.data(), tail.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kPage);
  EXPECT_EQ(tail, std::string(kPage, 'a'));
  EXPECT_EQ(libfs()->direct_read_bytes(), before + buf.size() + kPage);
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(DirectPathTest, InPlaceOverwritesGoDirectAndStayReadable) {
  MakeFile("/d/w", 2, 'a');
  auto fd = fs_->Open("/d/w", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());

  // First overwrite is in place but uncached: locked path, warms a writable
  // map.
  const std::string first(kPage, 'b');
  auto n = fs_->Pwrite(*fd, 0, Bytes(first));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kPage);
  const uint64_t before = libfs()->direct_write_bytes();

  const std::string second(kPage, 'c');
  n = fs_->Pwrite(*fd, kPage, Bytes(second));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kPage);
  EXPECT_EQ(libfs()->direct_write_bytes(), before + kPage);

  // Readable through both the direct and the locked path.
  std::string buf(2 * kPage, '\0');
  n = fs_->Pread(*fd, 0, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf.substr(0, kPage), first);
  EXPECT_EQ(buf.substr(kPage), second);
  ASSERT_TRUE(fs_->Close(*fd).ok());

  auto fd2 = fs_->Open("/d/w", kOpenRead);
  ASSERT_TRUE(fd2.ok());
  std::fill(buf.begin(), buf.end(), '\0');
  n = fs_->Pread(*fd2, 0, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(buf.substr(kPage), second);
  ASSERT_TRUE(fs_->Close(*fd2).ok());
}

TEST_F(DirectPathTest, ExtendsAndAppendsFallBackToLockedPath) {
  MakeFile("/d/x", 1, 'a');
  auto fd = fs_->Open("/d/x", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());

  // Warm a writable map with an in-place overwrite.
  const std::string page(kPage, 'b');
  ASSERT_TRUE(fs_->Pwrite(*fd, 0, Bytes(page)).ok());
  const uint64_t direct_before = libfs()->direct_write_bytes();

  // Extending past EOF must not run direct: it needs an extent allocation
  // and a logged SetSize.
  auto n = fs_->Pwrite(*fd, kPage, Bytes(page));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kPage);
  EXPECT_EQ(libfs()->direct_write_bytes(), direct_before);

  auto st = fs_->Fstat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 2 * kPage);
  ASSERT_TRUE(fs_->Close(*fd).ok());

  // O_APPEND writes always take the locked path.
  auto afd = fs_->Open("/d/x", kOpenWrite | kOpenAppend);
  ASSERT_TRUE(afd.ok());
  ASSERT_TRUE(fs_->Write(*afd, Bytes(page)).ok());
  EXPECT_EQ(libfs()->direct_write_bytes(), direct_before);
  ASSERT_TRUE(fs_->Close(*afd).ok());
}

TEST_F(DirectPathTest, OptionsCanDisableTheDirectPath) {
  Pxfs::Options options;
  options.direct_data = false;
  Pxfs plain(client_->fs(), options);
  ASSERT_TRUE(plain.Mkdir("/nd").ok());
  auto fd = plain.Open("/nd/f", kOpenCreate | kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string page(kPage, 'z');
  ASSERT_TRUE(plain.Write(*fd, Bytes(page)).ok());
  const uint64_t reads = libfs()->direct_read_bytes();
  const uint64_t writes = libfs()->direct_write_bytes();
  std::string buf(kPage, '\0');
  ASSERT_TRUE(plain.Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  ASSERT_TRUE(plain.Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  ASSERT_TRUE(plain.Pwrite(*fd, 0, Bytes(page)).ok());
  ASSERT_TRUE(plain.Pwrite(*fd, 0, Bytes(page)).ok());
  EXPECT_EQ(libfs()->direct_read_bytes(), reads);
  EXPECT_EQ(libfs()->direct_write_bytes(), writes);
  ASSERT_TRUE(plain.Close(*fd).ok());
}

TEST_F(DirectPathTest, RevocationBumpsEpochAndForcesLockedPath) {
  MakeFile("/d/s", 1, 'A');
  auto fd = fs_->Open("/d/s", kOpenRead);
  ASSERT_TRUE(fd.ok());
  std::string buf(kPage, '\0');
  // Warm and confirm the map is live.
  ASSERT_TRUE(fs_->Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  const uint64_t before = libfs()->direct_read_bytes();
  ASSERT_TRUE(fs_->Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  ASSERT_EQ(libfs()->direct_read_bytes(), before + kPage);

  LockClerk* clerk = client_->fs()->clerk();
  const uint64_t epoch = clerk->direct_epoch();

  // A second client takes the file lock for write: our cached authority is
  // revoked, which must bump the direct epoch before the grant moves.
  auto client2 = sys_->NewClient(EagerClientOptions());
  ASSERT_TRUE(client2.ok());
  Pxfs fs2((*client2)->fs());
  auto fd2 = fs2.Open("/d/s", kOpenWrite);
  ASSERT_TRUE(fd2.ok()) << fd2.status().ToString();
  const std::string page(kPage, 'B');
  ASSERT_TRUE(fs2.Pwrite(*fd2, 0, Bytes(page)).ok());
  ASSERT_TRUE(fs2.Close(*fd2).ok());

  EXPECT_GT(clerk->direct_epoch(), epoch);
  // A pin attempt against the pre-revoke epoch must be refused and counted.
  const uint64_t fallbacks = clerk->direct_fallbacks();
  EXPECT_FALSE(clerk->TryEnterDirect(epoch));
  EXPECT_EQ(clerk->direct_fallbacks(), fallbacks + 1);

  // Our next read re-acquires and must see the other client's bytes.
  ASSERT_TRUE(fs_->Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  EXPECT_EQ(buf, page);
  // ... and the map re-warms under the new epoch.
  const uint64_t direct = libfs()->direct_read_bytes();
  ASSERT_TRUE(fs_->Pread(*fd, 0, std::span<char>(buf.data(), kPage)).ok());
  EXPECT_EQ(libfs()->direct_read_bytes(), direct + kPage);
  EXPECT_EQ(buf, page);
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

// A reader hammering the direct path while another client overwrites the
// same page must never observe a torn page: direct access is epoch-pinned,
// and the writer's grant cannot complete until in-flight pins retire.
TEST_F(DirectPathTest, ConcurrentWriterNeverTearsDirectReads) {
  MakeFile("/d/t", 1, 'A');
  auto fd = fs_->Open("/d/t", kOpenRead);
  ASSERT_TRUE(fd.ok());
  std::string warm(kPage, '\0');
  ASSERT_TRUE(fs_->Pread(*fd, 0, std::span<char>(warm.data(), kPage)).ok());

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    std::string buf(kPage, '\0');
    while (!stop.load()) {
      auto n = fs_->Pread(*fd, 0, std::span<char>(buf.data(), kPage));
      if (!n.ok() || *n != kPage) {
        torn.fetch_add(1);
        break;
      }
      const char c = buf[0];
      if ((c != 'A' && c != 'B') ||
          buf != std::string(kPage, c)) {
        torn.fetch_add(1);
        break;
      }
    }
  });

  auto client2 = sys_->NewClient(EagerClientOptions());
  ASSERT_TRUE(client2.ok());
  Pxfs fs2((*client2)->fs());
  auto fd2 = fs2.Open("/d/t", kOpenWrite);
  ASSERT_TRUE(fd2.ok());
  for (int i = 0; i < 60; ++i) {
    const std::string page(kPage, (i % 2) ? 'A' : 'B');
    ASSERT_TRUE(fs2.Pwrite(*fd2, 0, Bytes(page)).ok());
  }
  ASSERT_TRUE(fs2.Close(*fd2).ok());
  stop.store(true);
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

TEST_F(DirectPathTest, FlatFsGetsGoDirectAndStayCoherent) {
  FlatFs flat(client_->fs());
  const std::string v1(1024, 'p');
  ASSERT_TRUE(flat.Put("k", Bytes(v1)).ok());

  // Put caches the value location eagerly: the very first get is direct.
  const uint64_t before = libfs()->direct_read_bytes();
  auto got = flat.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v1);
  EXPECT_EQ(libfs()->direct_read_bytes(), before + v1.size());

  // Replacement points the key at a new file; the stale location must not
  // be served.
  const std::string v2(2048, 'q');
  ASSERT_TRUE(flat.Put("k", Bytes(v2)).ok());
  got = flat.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, v2);

  ASSERT_TRUE(flat.Erase("k").ok());
  EXPECT_EQ(flat.Get("k").status().code(), ErrorCode::kNotFound);
}

// --- Crash simulation -----------------------------------------------------

constexpr uint64_t kCrashRegionBytes = 8ull << 20;

AerieSystem::Options SmallSystemOptions() {
  AerieSystem::Options options;
  options.region_bytes = kCrashRegionBytes;
  options.volume.log_bytes = 1ull << 20;
  // Enumerating hundreds of crash images makes every fence wall-clock slow:
  // a revoke-forced drain that ships a batch under the simulator can take
  // longer than the default 2s lease/wait budgets, so a loaded machine
  // either lapses the draining client's lease ("lease expired") or times
  // out the conflicting acquire ("lock wait timed out") — timing accidents,
  // not crash-consistency facts. Lease-lapse behaviour has its own
  // deterministic suite (lease_renewal_test); here both budgets outlive
  // any plausible sweep.
  options.lock.lease_ms = 10 * 60 * 1000;
  options.lock.wait_timeout_ms = 10 * 60 * 1000;
  return options;
}

std::string UniqueImagePath(const char* tag) {
  return ::testing::TempDir() + "/aerie_direct_crash_" + tag + ".img";
}

std::string PayloadFor(const std::string& path) { return "payload " + path; }

struct CrashRig {
  std::unique_ptr<AerieSystem> sys;
  std::unique_ptr<AerieSystem::Client> client;
  std::unique_ptr<Pxfs> fs;
  std::vector<std::string> durable;
};

CrashRig BootPrimedRig(const LibFs::Options& copts) {
  CrashRig t;
  auto sys = AerieSystem::Create(SmallSystemOptions());
  EXPECT_TRUE(sys.ok()) << sys.status().ToString();
  t.sys = std::move(*sys);
  auto client = t.sys->NewClient(copts);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  t.client = std::move(*client);
  t.fs = std::make_unique<Pxfs>(t.client->fs());
  EXPECT_TRUE(t.fs->Mkdir("/w").ok());
  t.durable.push_back("/w");
  return t;
}

// Reboot + recovery + fsck + acknowledged paths present with intact payload
// (same oracle as crash_sim_test's SystemChecker).
CrashSimulator::Checker RebootChecker(const std::vector<std::string>* durable) {
  return [durable](const std::string& image_path) -> Status {
    AerieSystem::Options options = SmallSystemOptions();
    options.region_path = image_path;
    options.fresh = false;
    auto sys = AerieSystem::Create(options);
    if (!sys.ok()) {
      return Status(ErrorCode::kCorrupted,
                    "reboot/recovery failed: " + sys.status().ToString());
    }
    auto report = RunFsck((*sys)->volume());
    if (!report.ok()) {
      return report.status();
    }
    if (!report->ok()) {
      return Status(ErrorCode::kCorrupted, "fsck: " + report->Summary());
    }
    auto client = (*sys)->NewClient();
    if (!client.ok()) {
      return client.status();
    }
    Pxfs fs((*client)->fs());
    for (const auto& path : *durable) {
      auto st = fs.Stat(path);
      if (!st.ok()) {
        return Status(ErrorCode::kCorrupted,
                      "acknowledged path missing: " + path);
      }
      if (st->is_dir) {
        continue;
      }
      const std::string want = PayloadFor(path);
      auto fd = fs.Open(path, kOpenRead);
      if (!fd.ok()) {
        return fd.status();
      }
      char buf[128] = {};
      auto n = fs.Read(*fd, std::span<char>(buf, sizeof(buf)));
      Status close = fs.Close(*fd);
      if (!n.ok()) {
        return n.status();
      }
      if (!close.ok()) {
        return close;
      }
      if (std::string_view(buf, *n) != want) {
        return Status(ErrorCode::kCorrupted,
                      "acknowledged content damaged: " + path);
      }
    }
    return OkStatus();
  };
}

// Shared flow for the direct-overwrite sweeps: prime a file, warm a writable
// map, attach the simulator (optionally suppressing a site), run an
// acknowledged direct overwrite, and enumerate at an explicit post-ack
// point. The oracle reads the page bytes straight out of the crash image at
// the extent's region offset: once the overwrite has been acknowledged, an
// image whose page is not entirely the new fill proves the flush protocol
// lost acknowledged bytes.
void RunDirectOverwriteSweep(const char* tag, const char* suppress_site,
                             bool expect_detect) {
  CrashRig t = BootPrimedRig(EagerClientOptions());
  ASSERT_TRUE(t.fs->Create("/w/f").ok());
  auto fd = t.fs->Open("/w/f", kOpenRead | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string base(kPage, 'A');
  ASSERT_TRUE(t.fs->Pwrite(*fd, 0, Bytes(base)).ok());

  // Warm the writable map and prove the direct path is live before the
  // simulator attaches (the mutation must exercise WriteDirect).
  ASSERT_TRUE(t.fs->Pwrite(*fd, 0, Bytes(std::string(kPage, 'C'))).ok());
  const uint64_t direct_before = t.client->fs()->direct_write_bytes();
  ASSERT_TRUE(t.fs->Pwrite(*fd, 0, Bytes(std::string(kPage, 'D'))).ok());
  ASSERT_GT(t.client->fs()->direct_write_bytes(), direct_before)
      << "overwrite did not take the direct path; nothing to mutate";

  // Locate the page in the region so the oracle can read it raw.
  auto st = t.fs->Stat("/w/f");
  ASSERT_TRUE(st.ok());
  auto mfile = MFile::Open(t.client->fs()->read_context(), st->oid);
  ASSERT_TRUE(mfile.ok());
  auto extent = mfile->ExtentForPage(0);
  ASSERT_TRUE(extent.ok());
  const uint64_t page_off = *extent;

  auto acked = std::make_shared<std::atomic<bool>>(false);
  auto checker = [acked, page_off](const std::string& image_path) -> Status {
    if (!acked->load()) {
      return OkStatus();  // pre-ack tearing is legal: the app has no claim
    }
    std::ifstream in(image_path, std::ios::binary);
    if (!in) {
      return Status(ErrorCode::kIoError, "cannot open crash image");
    }
    in.seekg(static_cast<std::streamoff>(page_off));
    std::string page(kPage, '\0');
    in.read(page.data(), static_cast<std::streamsize>(kPage));
    if (!in) {
      return Status(ErrorCode::kIoError, "short read from crash image");
    }
    if (page != std::string(kPage, 'B')) {
      return Status(ErrorCode::kCorrupted,
                    "acknowledged direct overwrite lost");
    }
    return OkStatus();
  };

  CrashSimOptions options;
  options.seed = 777;
  options.max_images = 300;
  options.random_draws_per_point = 3;
  options.stop_on_failure = expect_detect;
  options.image_path = UniqueImagePath(tag);
  options = CrashSimOptions::FromEnv(options);

  CrashSimulator sim(t.sys->scm_region(), options, checker);
  if (suppress_site != nullptr) {
    const int site = RegisterPersistSite(suppress_site);
    ASSERT_GE(site, 0);
    sim.SuppressSite(site);
  }

  auto n = t.fs->Pwrite(*fd, 0, Bytes(std::string(kPage, 'B')));
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, kPage);
  // The overwrite is acknowledged; from here on the page must be all-'B' in
  // every enumerated image.
  acked->store(true);
  t.sys->scm_region()->CrashPoint("test.direct_write.acked");

  if (expect_detect) {
    EXPECT_FALSE(sim.ok())
        << "suppressing " << suppress_site
        << " was not detected by any enumerated crash state\n"
        << sim.Report();
    std::fprintf(stderr, "detected %s:\n%s\n", suppress_site,
                 sim.Report().c_str());
  } else {
    EXPECT_TRUE(sim.ok()) << sim.Report();
    EXPECT_GT(sim.images_checked(), 0u);
  }
  ASSERT_TRUE(t.fs->Close(*fd).ok());
  ::unlink(options.image_path.c_str());
}

// With the BFlush in place, every enumerated state post-ack carries the
// acknowledged bytes.
TEST(DirectPathCrashTest, CleanSweepDirectOverwriteIsDurableOnAck) {
  RunDirectOverwriteSweep("clean", nullptr, /*expect_detect=*/false);
}

// Without it, the streamed page can sit in WC buffers while the app treats
// the write as done — the oracle must catch at least one such image.
TEST(DirectPathCrashTest, DetectsSuppressedDirectWriteBFlush) {
  RunDirectOverwriteSweep("mut_bflush", "libfs.direct.write.bflush",
                          /*expect_detect=*/true);
}

// Crash states enumerated while a revoke forces a lazy client to ship its
// batch (the drain path the direct epoch piggybacks on) must all recover:
// the ship itself is the txlog protocol, and acknowledged paths appear in
// `durable` only after the forced apply completes.
TEST(DirectPathCrashTest, CleanSweepCrashDuringRevokeShip) {
  LibFs::Options lazy;
  lazy.flush_interval_ms = 0;  // buffer until shipped by revoke or sync
  lazy.pool_low_water = 4;
  lazy.pool_refill = 64;
  CrashRig t = BootPrimedRig(lazy);
  // Ship the priming ops (the /w mkdir) so the simulator's budget is spent
  // on the revoke-forced drain, and so /w is applied before `durable`
  // promises it.
  ASSERT_TRUE(t.fs->SyncAll().ok());

  // Buffered (acknowledged-to-app but unshipped) creates under /w.
  ASSERT_TRUE(t.fs->Create("/w/s").ok());
  auto fd = t.fs->Open("/w/s", kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string payload = PayloadFor("/w/s");
  ASSERT_TRUE(t.fs->Write(*fd, Bytes(payload)).ok());
  ASSERT_TRUE(t.fs->Close(*fd).ok());

  CrashSimOptions options;
  options.seed = 778;
  options.max_images = 300;
  options.random_draws_per_point = 3;
  options.stop_on_failure = false;
  options.image_path = UniqueImagePath("revoke");
  options = CrashSimOptions::FromEnv(options);
  CrashSimulator sim(t.sys->scm_region(), options, RebootChecker(&t.durable));

  // A second client creating in /w revokes the first client's directory
  // lock mid-enumeration: the drain ships the buffered batch (txlog commit
  // crash points), then the second client's own eager create applies.
  auto client2 = t.sys->NewClient(EagerClientOptions());
  ASSERT_TRUE(client2.ok());
  Pxfs fs2((*client2)->fs());
  auto fd2 = fs2.Open("/w/b", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd2.ok()) << fd2.status().ToString();
  const std::string payload2 = PayloadFor("/w/b");
  ASSERT_TRUE(fs2.Write(*fd2, Bytes(payload2)).ok());
  ASSERT_TRUE(fs2.Close(*fd2).ok());
  // Both clients' ops are applied now; later images must contain them.
  t.durable.push_back("/w/s");
  t.durable.push_back("/w/b");
  t.sys->scm_region()->CrashPoint("test.revoke_ship.acked");

  // The first client reads back through the post-revoke path.
  auto fd3 = t.fs->Open("/w/b", kOpenRead);
  ASSERT_TRUE(fd3.ok()) << fd3.status().ToString();
  char buf[128] = {};
  auto n = t.fs->Read(*fd3, std::span<char>(buf, sizeof(buf)));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string_view(buf, *n), payload2);
  ASSERT_TRUE(t.fs->Close(*fd3).ok());

  EXPECT_TRUE(sim.ok()) << sim.Report();
  EXPECT_GT(sim.images_checked(), 0u);
  ::unlink(options.image_path.c_str());
}

}  // namespace
}  // namespace aerie
