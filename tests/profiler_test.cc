// Tests for the sampling profiler (src/obs/profiler.{h,cc}) and the
// off-CPU wait plane:
//   * handler async-signal-safety under a real SIGPROF storm with
//     concurrent span traffic (the TSan job runs this via
//     tools/check_tsan.sh, which is the actual safety oracle),
//   * ring overflow accounting in manual mode (exact, no timer),
//   * folded-stack export determinism with a synthetic span workload,
//   * off-CPU lock-wait attribution for a deliberately contended lock,
//   * composition of SIGPROF + SIGUSR1 sigdump + the CHECK-failure
//     post-mortem dump firing concurrently (ISSUE satellite: the three
//     signal consumers must coexist).
#include "src/obs/profiler.h"

#include <gtest/gtest.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/lock/lock_service.h"
#include "src/obs/obs.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace.h"

namespace aerie {
namespace obs {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::Stop();
    prof::ResetForTesting();
    SetMode(Mode::kSpans);
    ResetAll();
  }
  void TearDown() override {
    prof::Stop();
    prof::ResetForTesting();
    SetMode(Mode::kCounters);
    ResetAll();
  }
};

// Burn CPU inside spans on several threads while a real ITIMER_PROF timer
// fires at high rate. The assertion here is only "samples arrived and the
// process is intact"; the signal-safety claim is checked by running this
// binary under TSan (tools/check_tsan.sh) where a lock, allocation, or
// unsynchronized write in the handler becomes a hard report.
TEST_F(ProfilerTest, HandlerSurvivesSignalStormUnderSpanLoad) {
  prof::Options opt;
  opt.hz = 2000;
  ASSERT_TRUE(prof::Start(opt));

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        AERIE_SPAN("proftest", "burn");
        volatile uint64_t acc = 0;
        for (int i = 0; i < 50000; ++i) {
          acc = acc + static_cast<uint64_t>(i) * i;
        }
      }
    });
  }
  // ITIMER_PROF counts process CPU time: 4 spinning threads accumulate it
  // fast, so a short wall-clock window yields hundreds of samples.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : workers) {
    w.join();
  }
  prof::Stop();

  const prof::ProfileStats stats = prof::GetStats();
  EXPECT_GT(stats.samples, 0u);
  // Worker threads register rings at span begin, so samples should fold
  // under the bench span rather than all landing in no_ring.
  const std::string folded = prof::FoldedStacks();
  EXPECT_NE(folded.find("proftest;proftest.burn;"), std::string::npos)
      << folded;
}

// Manual mode: a fresh thread gets a 64-slot ring; pushing 100 samples
// must accept exactly 64, reject exactly 36, and count the rejects in
// ProfileStats::dropped. After a drain the ring accepts samples again.
TEST_F(ProfilerTest, RingOverflowIsCountedExactly) {
  prof::Options opt;
  opt.manual = true;
  opt.ring_slots = 64;
  ASSERT_TRUE(prof::Start(opt));
  const uint64_t base_dropped = prof::GetStats().dropped;

  SpanStat& span = Registry::Instance().GetSpan("proftest.overflow");
  int accepted = 0;
  int rejected = 0;
  // A fresh thread, so its ring is created with this Start's ring_slots
  // (the main thread may hold a larger ring from an earlier test).
  std::thread t([&] {
    const uintptr_t frames[2] = {0x1000, 0x2000};
    for (int i = 0; i < 100; ++i) {
      if (prof::InjectSampleForTesting(&span, frames, 2)) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
    prof::DrainNow();
    // Post-drain the ring has room again.
    EXPECT_TRUE(prof::InjectSampleForTesting(&span, frames, 2));
  });
  t.join();

  EXPECT_EQ(accepted, 64);
  EXPECT_EQ(rejected, 36);
  EXPECT_EQ(prof::GetStats().dropped - base_dropped, 36u);
  prof::DrainNow();
  EXPECT_GE(prof::GetStats().samples, 65u);
}

// Synthetic samples with fake frame addresses (dladdr cannot resolve them,
// so they symbolize to deterministic hex): identical stacks must aggregate
// into one folded line, frames must come out root-first, spanless samples
// fold under (none);(no_span), and the export must be byte-identical when
// nothing new is drained.
TEST_F(ProfilerTest, FoldedStacksAreDeterministic) {
  prof::Options opt;
  opt.manual = true;
  ASSERT_TRUE(prof::Start(opt));

  SpanStat& alpha = Registry::Instance().GetSpan("layera.alpha");
  SpanStat& beta = Registry::Instance().GetSpan("layerb.beta");
  std::thread t([&] {
    const uintptr_t stack1[3] = {0x30, 0x20, 0x10};  // leaf-first capture
    const uintptr_t stack2[2] = {0x21, 0x11};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(prof::InjectSampleForTesting(&alpha, stack1, 3));
    }
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(prof::InjectSampleForTesting(&beta, stack2, 2));
    }
    ASSERT_TRUE(prof::InjectSampleForTesting(nullptr, stack2, 2));
  });
  t.join();
  prof::DrainNow();

  const std::string folded = prof::FoldedStacks();
  EXPECT_EQ(folded, prof::FoldedStacks());  // stable across exports
  EXPECT_NE(folded.find("layera;layera.alpha;0x10;0x20;0x30 5\n"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("layerb;layerb.beta;0x11;0x21 3\n"),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("(none);(no_span);0x11;0x21 1\n"), std::string::npos)
      << folded;

  // Each drained sample credits one period of CPU to its span.
  const prof::ProfileStats stats = prof::GetStats();
  EXPECT_EQ(alpha.cpu_ns(), 5 * stats.period_ns);
  EXPECT_EQ(beta.cpu_ns(), 3 * stats.period_ns);

  // The JSON view agrees with the folded view on totals and ranks the
  // leaf of the hottest stack first.
  const std::string json = prof::ProfileJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"frames\":[\"0x10\",\"0x20\",\"0x30\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(prof::TopText(5).find("0x30"), std::string::npos);
}

class NullSink : public RevocationSink {
 public:
  void OnRevoke(LockId, LockMode) override {}
};

// A deliberately contended lock: client 2 blocks in
// LockService::Acquire(wait=true) while client 1 holds the lock
// exclusively for ~20ms. The blocked span must accumulate lock_wait_ns,
// the lock.wait.latency_us histogram must record the wait, and the
// lock.waiters gauge must return to zero.
TEST_F(ProfilerTest, ContendedLockAttributesOffCpuWait) {
  LockService service;
  NullSink sink1, sink2;
  service.RegisterClient(1, &sink1);
  service.RegisterClient(2, &sink2);
  ASSERT_TRUE(service.Acquire(1, 100, LockMode::kExclusive, false).ok());

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(service.Release(1, 100).ok());
  });

  // The wait lands on the INNERMOST span at the blocking site —
  // lockservice.acquire, opened by Acquire itself — not on this outer
  // caller span (ScopedWait re-reads the TLS span at destruction).
  SpanStat& outer = Registry::Instance().GetSpan("proftest.blocked_acquire");
  SpanStat& acquire_span =
      Registry::Instance().GetSpan("lockservice.acquire");
  {
    ScopedSpan scope(&outer);
    EXPECT_TRUE(service.Acquire(2, 100, LockMode::kExclusive, true).ok());
  }
  releaser.join();

  // The acquire blocked ~20ms; allow generous slack for slow machines but
  // require a clearly nonzero attribution.
  EXPECT_GE(acquire_span.lock_wait_ns(), 5u * 1000 * 1000);
  EXPECT_EQ(acquire_span.rpc_wait_ns(), 0u);
  EXPECT_EQ(outer.lock_wait_ns(), 0u);

  const Histogram wait_hist =
      Registry::Instance().GetHistogram("lock.wait.latency_us").Snapshot();
  ASSERT_GE(wait_hist.count(), 1u);
  EXPECT_GE(wait_hist.max(), 5u * 1000);  // microseconds

  EXPECT_EQ(Registry::Instance().GetGauge("lock.waiters").value(), 0);
  EXPECT_TRUE(service.Release(2, 100).ok());
}

// ScopedWait in counters-only mode: no span to attribute to, but the
// total_ns accumulator (what lock.wait.latency_us is built from) must
// still measure.
TEST_F(ProfilerTest, ScopedWaitAccumulatesWithoutSpans) {
  SetMode(Mode::kCounters);
  uint64_t total_ns = 0;
  {
    ScopedWait wait(WaitKind::kOther, &total_ns);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(total_ns, 1u * 1000 * 1000);
}

// The three signal consumers — SIGPROF sampling, the SIGUSR1 sigdump, and
// the CHECK-failure post-mortem dump — must coexist: firing all three
// concurrently may not crash, deadlock, or uninstall each other. Requires
// AERIE_OBS_SIGDUMP=1 in the environment (ctest sets it); skipped
// otherwise because raising SIGUSR1 without a handler kills the process.
TEST_F(ProfilerTest, SignalHandlersCompose) {
  detail::StartProcessTelemetryOnce();
  struct sigaction usr1 {};
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &usr1), 0);
  if (usr1.sa_handler == SIG_DFL || usr1.sa_handler == SIG_IGN) {
    GTEST_SKIP() << "AERIE_OBS_SIGDUMP not enabled at process attach";
  }

  prof::Options opt;
  opt.hz = 2000;
  ASSERT_TRUE(prof::Start(opt));

  std::atomic<bool> stop{false};
  std::vector<std::thread> burners;
  for (int t = 0; t < 3; ++t) {
    burners.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        AERIE_SPAN("proftest", "compose");
        volatile uint64_t acc = 0;
        for (int i = 0; i < 50000; ++i) {
          acc = acc + static_cast<uint64_t>(i) * i;
        }
      }
    });
  }
  // Fire the sigdump and the post-mortem dump repeatedly while SIGPROF is
  // hammering the same threads. The tick processes the pending sigdump the
  // way the ticker thread would.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(raise(SIGUSR1), 0);
    ProcessTelemetryTickForTesting();
    DumpPostMortem();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& b : burners) {
    b.join();
  }
  prof::Stop();

  EXPECT_GT(prof::GetStats().samples, 0u);
  // Neither consumer knocked out the other's handler.
  struct sigaction prof_sa {};
  ASSERT_EQ(sigaction(SIGPROF, nullptr, &prof_sa), 0);
  EXPECT_NE(prof_sa.sa_handler, SIG_DFL);
  ASSERT_EQ(sigaction(SIGUSR1, nullptr, &usr1), 0);
  EXPECT_NE(usr1.sa_handler, SIG_DFL);
}

}  // namespace
}  // namespace obs
}  // namespace aerie
