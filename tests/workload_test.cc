// Tests for the workload layer: the same op stream must succeed on every
// system under test, and the FileBench profiles must run end to end.
#include <gtest/gtest.h>

#include <string>

#include "src/workload/filebench.h"
#include "src/workload/microbench.h"
#include "src/workload/sut.h"

namespace aerie {
namespace {

SystemUnderTest::Options SmallOptions() {
  SystemUnderTest::Options options;
  options.region_bytes = 512ull << 20;
  options.disk_blocks = 64ull << 10;  // 256MB
  options.rpc_delay_ns = 0;
  options.syscall_entry_ns = 0;
  return options;
}

class SutEquivalenceTest : public ::testing::TestWithParam<SutKind> {};

TEST_P(SutEquivalenceTest, CommonOpStreamBehavesIdentically) {
  auto sut = SystemUnderTest::Create(GetParam(), SmallOptions());
  ASSERT_TRUE(sut.ok()) << static_cast<int>(GetParam());
  FsInterface* fs = (*sut)->fs();

  ASSERT_TRUE(fs->Mkdir("/w").ok());
  ASSERT_TRUE(fs->Mkdir("/w/sub").ok());

  // create + write + read back
  auto fd = fs->Open("/w/sub/file", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  const std::string data(10000, 'd');
  EXPECT_EQ(*fs->Write(*fd, std::span<const char>(data.data(), data.size())),
            data.size());
  ASSERT_TRUE(fs->Close(*fd).ok());
  EXPECT_EQ(*fs->StatSize("/w/sub/file"), data.size());

  auto rfd = fs->Open("/w/sub/file", kOpenRead);
  ASSERT_TRUE(rfd.ok());
  std::string buf(data.size(), '\0');
  EXPECT_EQ(*fs->Read(*rfd, std::span<char>(buf.data(), buf.size())),
            data.size());
  EXPECT_EQ(buf, data);
  ASSERT_TRUE(fs->Close(*rfd).ok());

  // pwrite/pread
  auto pfd = fs->Open("/w/sub/file", kOpenRead | kOpenWrite);
  ASSERT_TRUE(pfd.ok());
  const char patch[] = "PATCH";
  EXPECT_EQ(*fs->Pwrite(*pfd, 5000, std::span<const char>(patch, 5)), 5u);
  char small[5];
  EXPECT_EQ(*fs->Pread(*pfd, 5000, std::span<char>(small, 5)), 5u);
  EXPECT_EQ(std::string_view(small, 5), "PATCH");
  ASSERT_TRUE(fs->Close(*pfd).ok());

  // rename + unlink
  ASSERT_TRUE(fs->Rename("/w/sub/file", "/w/renamed").ok());
  EXPECT_EQ(fs->StatSize("/w/sub/file").code(), ErrorCode::kNotFound);
  EXPECT_EQ(*fs->StatSize("/w/renamed"), data.size());
  ASSERT_TRUE(fs->Unlink("/w/renamed").ok());
  EXPECT_EQ(fs->StatSize("/w/renamed").code(), ErrorCode::kNotFound);
  ASSERT_TRUE(fs->Sync().ok());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SutEquivalenceTest,
                         ::testing::Values(SutKind::kPxfs, SutKind::kPxfsNnc,
                                           SutKind::kRamFs, SutKind::kExt3,
                                           SutKind::kExt4),
                         [](const auto& info) {
                           std::string name(SutKindName(info.param));
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

class FilebenchSmokeTest
    : public ::testing::TestWithParam<std::pair<SutKind, FilebenchKind>> {};

TEST_P(FilebenchSmokeTest, PrepareAndIterate) {
  auto [sut_kind, profile_kind] = GetParam();
  auto sut = SystemUnderTest::Create(sut_kind, SmallOptions());
  ASSERT_TRUE(sut.ok());
  FilebenchProfile profile = FilebenchProfile::Paper(profile_kind, 0.02);
  profile.mean_file_size = 8 << 10;  // keep the smoke test quick
  FilebenchRunner runner((*sut)->fs(), profile, "/bench", 42);
  ASSERT_TRUE(runner.Prepare().ok());
  Histogram ops;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(runner.RunIteration(&ops).ok()) << i;
  }
  EXPECT_GT(ops.count(), 100u);
  EXPECT_GT(ops.Mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, FilebenchSmokeTest,
    ::testing::Values(
        std::make_pair(SutKind::kPxfs, FilebenchKind::kFileserver),
        std::make_pair(SutKind::kPxfs, FilebenchKind::kWebserver),
        std::make_pair(SutKind::kPxfs, FilebenchKind::kWebproxy),
        std::make_pair(SutKind::kExt3, FilebenchKind::kFileserver),
        std::make_pair(SutKind::kExt4, FilebenchKind::kWebproxy),
        std::make_pair(SutKind::kRamFs, FilebenchKind::kWebserver)),
    [](const auto& info) {
      return std::string(SutKindName(info.param.first)) + "_" +
             std::string(FilebenchKindName(info.param.second));
    });

TEST(FlatWebproxyTest, RunsOnFlatFs) {
  auto sut = SystemUnderTest::Create(SutKind::kFlatFs, SmallOptions());
  ASSERT_TRUE(sut.ok());
  FilebenchProfile profile =
      FilebenchProfile::Paper(FilebenchKind::kWebproxy, 0.1);
  profile.mean_file_size = 8 << 10;
  FlatWebproxyRunner runner((*sut)->flat(), profile, "wp", 7);
  ASSERT_TRUE(runner.Prepare().ok());
  Histogram ops;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(runner.RunIteration(&ops).ok()) << i;
  }
  EXPECT_GT(ops.count(), 100u);
}

TEST(MicrobenchTest, AllMicrobenchesRunOnPxfsAndExt4) {
  for (SutKind kind : {SutKind::kPxfs, SutKind::kExt4}) {
    auto sut = SystemUnderTest::Create(kind, SmallOptions());
    ASSERT_TRUE(sut.ok());
    FsInterface* fs = (*sut)->fs();
    ASSERT_TRUE(fs->Mkdir("/micro").ok());
    MicrobenchConfig config = MicrobenchConfig::Scaled(0.01);

    auto seq_read = BenchSeqRead(fs, "/micro", config);
    ASSERT_TRUE(seq_read.ok()) << seq_read.status().ToString();
    EXPECT_GT(seq_read->count(), 0u);
    auto seq_write = BenchSeqWrite(fs, "/micro", config);
    ASSERT_TRUE(seq_write.ok());
    auto rand_read = BenchRandRead(fs, "/micro", config, 1);
    ASSERT_TRUE(rand_read.ok());
    auto rand_write = BenchRandWrite(fs, "/micro", config, 2);
    ASSERT_TRUE(rand_write.ok());
    auto open = BenchOpen(fs, "/micro", config);
    ASSERT_TRUE(open.ok());
    auto create = BenchCreate(fs, "/micro", config);
    ASSERT_TRUE(create.ok());
    auto del = BenchDelete(fs, "/micro", config);
    ASSERT_TRUE(del.ok());
    auto append = BenchAppend(fs, "/micro", config);
    ASSERT_TRUE(append.ok());
    EXPECT_EQ(create->count(), config.nfiles);
    EXPECT_EQ(del->count(), config.nfiles);
  }
}

TEST(SutTest, MultipleAerieClientsShareOneNamespace) {
  auto sut = SystemUnderTest::Create(SutKind::kPxfs, SmallOptions());
  ASSERT_TRUE(sut.ok());
  auto client2 = (*sut)->NewClientFs();
  ASSERT_TRUE(client2.ok());
  ASSERT_TRUE((*sut)->fs()->Mkdir("/shareddir").ok());
  ASSERT_TRUE((*sut)->fs()->Create("/shareddir/from1").ok());
  ASSERT_TRUE((*sut)->fs()->Sync().ok());
  ASSERT_TRUE((*client2)->Create("/shareddir/from2").ok());
  ASSERT_TRUE((*client2)->Sync().ok());
  EXPECT_TRUE((*client2)->StatSize("/shareddir/from1").ok());
}

TEST(SutTest, WriteLatencyKnobSlowsPersistence) {
  auto sut = SystemUnderTest::Create(SutKind::kPxfs, SmallOptions());
  ASSERT_TRUE(sut.ok());
  FsInterface* fs = (*sut)->fs();
  ASSERT_TRUE(fs->Mkdir("/lat").ok());
  const std::string data(64 << 10, 'l');

  auto write_one = [&](const char* path) {
    Stopwatch sw;
    auto fd = fs->Open(path, kOpenCreate | kOpenWrite);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(
        fs->Write(*fd, std::span<const char>(data.data(), data.size()))
            .ok());
    EXPECT_TRUE(fs->Close(*fd).ok());
    return sw.ElapsedNanos();
  };
  (void)write_one("/lat/warmup");  // pool fill etc. happen here
  const uint64_t fast = write_one("/lat/fast");
  (*sut)->SetWriteLatency(2000);
  const uint64_t slow = write_one("/lat/slow");
  EXPECT_GT(slow, fast * 2);
}

}  // namespace
}  // namespace aerie
