// Tests for the lock clerk: caching, hierarchical local grants, revocation
// draining, de-escalation, release hooks, lease loss.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/lock/clerk.h"
#include "src/lock/lock_service.h"

namespace aerie {
namespace {

// Direct (no-RPC) stub binding a clerk to an in-process service.
class DirectLockClient : public LockServiceClient {
 public:
  DirectLockClient(LockService* service, uint64_t client_id)
      : service_(service), client_id_(client_id) {}
  Status Acquire(LockId id, LockMode mode, bool wait) override {
    return service_->Acquire(client_id_, id, mode, wait);
  }
  Status Release(LockId id) override {
    return service_->Release(client_id_, id);
  }
  Status Downgrade(LockId id, LockMode to) override {
    return service_->Downgrade(client_id_, id, to);
  }
  Status Renew() override { return service_->Renew(client_id_); }

 private:
  LockService* service_;
  uint64_t client_id_;
};

class ClerkTest : public ::testing::Test {
 protected:
  ClerkTest() {
    LockService::Options options;
    options.lease_ms = 60000;
    options.wait_timeout_ms = 1000;
    service_ = std::make_unique<LockService>(options);
  }

  struct Bound {
    std::unique_ptr<DirectLockClient> stub;
    std::unique_ptr<LockClerk> clerk;
  };

  Bound MakeClient(uint64_t id) {
    Bound b;
    b.stub = std::make_unique<DirectLockClient>(service_.get(), id);
    LockClerk::Options copts;
    copts.local_wait_timeout_ms = 1000;
    b.clerk = std::make_unique<LockClerk>(b.stub.get(), copts);
    service_->RegisterClient(id, b.clerk.get());
    return b;
  }

  std::unique_ptr<LockService> service_;
};

TEST_F(ClerkTest, AcquireTakesGlobalOnce) {
  auto c = MakeClient(1);
  EXPECT_TRUE(c.clerk->Acquire(100, LockMode::kShared).ok());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kShared);
  EXPECT_TRUE(c.clerk->LocallyHeld(100));
  c.clerk->Release(100);
  EXPECT_FALSE(c.clerk->LocallyHeld(100));
  // Lock caching: global retained after local release; reacquire is local.
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kShared);
  const uint64_t rpcs = c.clerk->global_acquires();
  EXPECT_TRUE(c.clerk->Acquire(100, LockMode::kShared).ok());
  EXPECT_EQ(c.clerk->global_acquires(), rpcs);
  c.clerk->Release(100);
}

TEST_F(ClerkTest, AncestorIntentLocksTaken) {
  auto c = MakeClient(1);
  const LockId ancestors[] = {10, 20};
  EXPECT_TRUE(c.clerk->Acquire(100, LockMode::kExclusive, ancestors).ok());
  EXPECT_EQ(service_->HeldMode(1, 10), LockMode::kIntentExclusive);
  EXPECT_EQ(service_->HeldMode(1, 20), LockMode::kIntentExclusive);
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kExclusive);
}

TEST_F(ClerkTest, HierarchicalLockGrantsDescendantsLocally) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(10, LockMode::kExclusiveHier).ok());
  c.clerk->Release(10);

  const uint64_t rpcs = c.clerk->global_acquires();
  const LockId ancestors[] = {10};
  // Descendants granted locally under the cached XH lock: no new RPC.
  EXPECT_TRUE(c.clerk->Acquire(101, LockMode::kExclusive, ancestors).ok());
  EXPECT_TRUE(c.clerk->Acquire(102, LockMode::kShared, ancestors).ok());
  EXPECT_EQ(c.clerk->global_acquires(), rpcs);
  EXPECT_EQ(service_->HeldMode(1, 101), LockMode::kFree);
  c.clerk->Release(101);
  c.clerk->Release(102);
}

TEST_F(ClerkTest, SharedHierDoesNotCoverWrites) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(10, LockMode::kSharedHier).ok());
  c.clerk->Release(10);
  const uint64_t rpcs = c.clerk->global_acquires();
  const LockId ancestors[] = {10};
  // Read covered locally; write needs a global acquire.
  EXPECT_TRUE(c.clerk->Acquire(101, LockMode::kShared, ancestors).ok());
  EXPECT_EQ(c.clerk->global_acquires(), rpcs);
  EXPECT_TRUE(c.clerk->Acquire(102, LockMode::kExclusive, ancestors).ok());
  EXPECT_GT(c.clerk->global_acquires(), rpcs);
  c.clerk->Release(101);
  c.clerk->Release(102);
}

TEST_F(ClerkTest, RevocationWaitsForLocalRelease) {
  auto c1 = MakeClient(1);
  auto c2 = MakeClient(2);
  ASSERT_TRUE(c1.clerk->Acquire(100, LockMode::kExclusive).ok());

  std::atomic<bool> granted{false};
  std::thread contender([&] {
    EXPECT_TRUE(c2.clerk->Acquire(100, LockMode::kExclusive).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());  // c1 still holds the local mutex
  c1.clerk->Release(100);        // drain -> clerk releases global
  contender.join();
  EXPECT_TRUE(granted.load());
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kFree);
  c2.clerk->Release(100);
}

TEST_F(ClerkTest, ReleaseHookRunsBeforeGlobalRelease) {
  auto c1 = MakeClient(1);
  auto c2 = MakeClient(2);
  std::atomic<int> hook_calls{0};
  c1.clerk->set_release_hook([&](LockId id, LockMode) {
    EXPECT_EQ(id, 100u);
    // At hook time the lock must still be held at the service.
    EXPECT_NE(service_->HeldMode(1, 100), LockMode::kFree);
    hook_calls++;
  });
  ASSERT_TRUE(c1.clerk->Acquire(100, LockMode::kExclusive).ok());
  c1.clerk->Release(100);
  EXPECT_TRUE(c2.clerk->Acquire(100, LockMode::kExclusive).ok());
  EXPECT_GE(hook_calls.load(), 1);
  c2.clerk->Release(100);
}

TEST_F(ClerkTest, DeEscalationPromotesInUseChildren) {
  auto c1 = MakeClient(1);
  auto c2 = MakeClient(2);
  // c1 holds XH on the directory and a locally-granted lock on a file.
  ASSERT_TRUE(c1.clerk->Acquire(10, LockMode::kExclusiveHier).ok());
  c1.clerk->Release(10);
  const LockId ancestors[] = {10};
  ASSERT_TRUE(c1.clerk->Acquire(101, LockMode::kExclusive, ancestors).ok());
  EXPECT_EQ(service_->HeldMode(1, 101), LockMode::kFree);  // local only

  // c2 wants the directory read-locked: c1 must de-escalate, keeping its
  // in-use file lock by acquiring it explicitly.
  std::thread contender([&] {
    EXPECT_TRUE(c2.clerk->Acquire(10, LockMode::kShared).ok());
  });
  contender.join();
  EXPECT_EQ(service_->HeldMode(1, 101), LockMode::kExclusive);
  // Directory lock de-escalated to intent mode (still protects child).
  EXPECT_EQ(service_->HeldMode(1, 10), LockMode::kIntentExclusive);
  c1.clerk->Release(101);
  c2.clerk->Release(10);
}

TEST_F(ClerkTest, LeaseLossVoidsAuthority) {
  auto c1 = MakeClient(1);
  auto c2 = MakeClient(2);
  ASSERT_TRUE(c1.clerk->Acquire(100, LockMode::kExclusive).ok());
  c1.clerk->Release(100);
  service_->ExpireLeaseForTesting(1);
  EXPECT_TRUE(c2.clerk->Acquire(100, LockMode::kExclusive).ok());
  EXPECT_TRUE(c1.clerk->lease_lost());
  EXPECT_EQ(c1.clerk->GlobalMode(100), LockMode::kFree);
  c2.clerk->Release(100);
}

TEST_F(ClerkTest, GlobalAuthorityResolvesCoverChain) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(10, LockMode::kExclusiveHier).ok());
  c.clerk->Release(10);
  const LockId ancestors[] = {10};
  ASSERT_TRUE(c.clerk->Acquire(101, LockMode::kExclusive, ancestors).ok());
  EXPECT_EQ(c.clerk->GlobalAuthorityOf(101), 10u);
  EXPECT_EQ(c.clerk->GlobalAuthorityOf(10), 10u);
  c.clerk->Release(101);
}

TEST_F(ClerkTest, ReleaseIdleGlobalsDropsOnlyIdle) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(100, LockMode::kShared).ok());
  ASSERT_TRUE(c.clerk->Acquire(200, LockMode::kShared).ok());
  c.clerk->Release(200);
  // 100 is in use; 200 is idle.
  c.clerk->ReleaseIdleGlobals(0);
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kShared);
  EXPECT_EQ(service_->HeldMode(1, 200), LockMode::kFree);
  c.clerk->Release(100);
}

TEST_F(ClerkTest, LocalReadersShareLocalWriterExcludes) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(100, LockMode::kExclusive).ok());
  std::atomic<bool> got{false};
  std::thread t([&] {
    EXPECT_TRUE(c.clerk->Acquire(100, LockMode::kExclusive).ok());
    got.store(true);
    c.clerk->Release(100);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got.load());
  c.clerk->Release(100);
  t.join();
  EXPECT_TRUE(got.load());
}

TEST_F(ClerkTest, ReleaseAllGlobalsLeavesNothingHeld) {
  auto c = MakeClient(1);
  ASSERT_TRUE(c.clerk->Acquire(100, LockMode::kShared).ok());
  ASSERT_TRUE(c.clerk->Acquire(200, LockMode::kExclusiveHier).ok());
  c.clerk->Release(100);
  c.clerk->Release(200);
  c.clerk->ReleaseAllGlobals();
  EXPECT_EQ(service_->HeldMode(1, 100), LockMode::kFree);
  EXPECT_EQ(service_->HeldMode(1, 200), LockMode::kFree);
}

}  // namespace
}  // namespace aerie
