// Randomized crash-point property test (paper §5.3.6): crash the system at
// random WAL-commit boundaries while a workload runs, reboot, recover, and
// require (a) a structurally sound volume (fsck clean) and (b) prefix
// semantics — every op acknowledged as applied is present; unshipped
// batched ops are absent without damage.
#include <gtest/gtest.h>

#include <string>

#include "src/common/rand.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/scm/crash_sim.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

class CrashRandomTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/aerie_crashrand_" +
            std::to_string(GetParam()) + ".img";
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::unique_ptr<AerieSystem> Boot(bool fresh) {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    options.region_path = path_;
    options.fresh = fresh;
    auto sys = AerieSystem::Create(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  std::string path_;
};

TEST_P(CrashRandomTest, RecoveryIsSoundAtRandomCrashPoints) {
  Rng rng(GetParam());

  // Phase 1: run a create/write/unlink workload with eager shipping, then
  // "crash" after a randomly chosen number of batches by flipping the
  // crash-after-WAL-commit switch (the injected crash leaves a committed
  // but unapplied record, the hardest state).
  std::vector<std::string> acknowledged;  // ops the TFS confirmed applied
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient(LibFs::Options{.eager_ship = true});
    ASSERT_TRUE(client.ok());
    Pxfs fs((*client)->fs());
    ASSERT_TRUE(fs.Mkdir("/w").ok());
    acknowledged.push_back("/w");

    const int crash_after = 5 + static_cast<int>(rng.Uniform(40));
    int completed = 0;
    for (int i = 0; i < 60; ++i) {
      if (completed == crash_after) {
        sys->tfs()->set_crash_after_log_commit(true);
      }
      const std::string path = "/w/f" + std::to_string(i);
      auto fd = fs.Open(path, kOpenCreate | kOpenWrite);
      if (!fd.ok()) {
        break;  // the injected crash fired
      }
      const std::string data = "payload " + std::to_string(i);
      bool ok = fs.Write(*fd, std::span<const char>(data.data(),
                                                    data.size()))
                    .ok();
      ok = fs.Close(*fd).ok() && ok;
      if (!ok) {
        break;
      }
      // Eager shipping means the op already round-tripped; if the crash
      // switch was armed, the *next* batch dies mid-pipeline.
      if (!sys->tfs()
               ->GetRoots()
               .pxfs_root.IsNull()) {  // always true; keeps structure clear
        completed++;
      }
      if (completed <= crash_after) {
        acknowledged.push_back(path);
      }
    }
    (*client)->AbandonForCrashTest();
  }

  // Phase 2: reboot + recover; fsck must be clean.
  {
    auto sys = Boot(/*fresh=*/false);
    auto report = RunFsck(sys->volume());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << report->Summary();

    // Every acknowledged op's file must exist with intact content.
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs fs((*client)->fs());
    for (size_t i = 1; i < acknowledged.size(); ++i) {
      auto st = fs.Stat(acknowledged[i]);
      // The final acknowledged op may coincide with the crash point; accept
      // present-or-absent for the last one, require presence otherwise.
      if (i + 1 < acknowledged.size()) {
        EXPECT_TRUE(st.ok()) << acknowledged[i];
      }
      if (st.ok()) {
        auto fd = fs.Open(acknowledged[i], kOpenRead);
        ASSERT_TRUE(fd.ok());
        char buf[64] = {};
        auto n = fs.Read(*fd, std::span<char>(buf, sizeof(buf)));
        ASSERT_TRUE(n.ok());
        EXPECT_TRUE(std::string_view(buf, *n).starts_with("payload "))
            << acknowledged[i];
        ASSERT_TRUE(fs.Close(*fd).ok());
      }
    }
    // The volume keeps working after recovery.
    ASSERT_TRUE(fs.Create("/w/after_recovery").ok());
    ASSERT_TRUE(fs.SyncAll().ok());
    auto report2 = RunFsck(sys->volume());
    ASSERT_TRUE(report2.ok());
    EXPECT_TRUE(report2->ok()) << report2->Summary();
  }
}

// Line-granularity variant: instead of crashing at WAL-commit boundaries
// (which the DRAM-backed region persists in full), enumerate cache-line
// crash images with CrashSimulator — catching missing flushes and
// misordered fences that the whole-region crash above cannot see.
TEST_P(CrashRandomTest, LineGranularityCrashStatesRecoverCleanly) {
  AerieSystem::Options options;
  options.region_bytes = 8ull << 20;
  options.volume.log_bytes = 1ull << 20;
  auto sys = AerieSystem::Create(options);
  ASSERT_TRUE(sys.ok()) << sys.status().ToString();

  LibFs::Options copts;
  copts.eager_ship = true;
  copts.flush_interval_ms = 0;
  copts.pool_low_water = 4;
  copts.pool_refill = 64;
  auto client = (*sys)->NewClient(copts);
  ASSERT_TRUE(client.ok());
  Pxfs fs((*client)->fs());
  std::vector<std::string> durable;
  // Prime pools and the working dir before the simulator attaches so the
  // image budget is spent on the create/write protocol.
  ASSERT_TRUE(fs.Mkdir("/w").ok());
  durable.push_back("/w");
  ASSERT_TRUE(fs.Create("/w/prime").ok());
  durable.push_back("/w/prime");

  CrashSimOptions sopts;
  sopts.seed = GetParam();
  sopts.max_images = 100;
  sopts.random_draws_per_point = 2;
  sopts.stop_on_failure = false;
  sopts.image_path = path_;  // fixture temp file doubles as the image
  auto checker = [&](const std::string& image) -> Status {
    AerieSystem::Options ropts = options;
    ropts.region_path = image;
    ropts.fresh = false;
    auto rsys = AerieSystem::Create(ropts);
    if (!rsys.ok()) {
      return Status(ErrorCode::kCorrupted,
                    "reboot failed: " + rsys.status().ToString());
    }
    auto report = RunFsck((*rsys)->volume());
    if (!report.ok()) {
      return report.status();
    }
    if (!report->ok()) {
      return Status(ErrorCode::kCorrupted, "fsck: " + report->Summary());
    }
    auto rclient = (*rsys)->NewClient();
    if (!rclient.ok()) {
      return rclient.status();
    }
    Pxfs rfs((*rclient)->fs());
    for (const auto& p : durable) {
      if (!rfs.Stat(p).ok()) {
        return Status(ErrorCode::kCorrupted, "acknowledged path lost: " + p);
      }
    }
    return OkStatus();
  };

  Rng rng(GetParam());
  {
    CrashSimulator sim((*sys)->scm_region(), sopts, checker);
    for (int i = 0; i < 6; ++i) {
      const std::string path =
          "/w/f" + std::to_string(i) +
          std::string(1 + rng.Uniform(20), static_cast<char>('a' + i));
      auto fd = fs.Open(path, kOpenCreate | kOpenWrite);
      ASSERT_TRUE(fd.ok()) << fd.status().ToString();
      const std::string data = "payload " + std::to_string(i);
      ASSERT_TRUE(
          fs.Write(*fd, std::span<const char>(data.data(), data.size()))
              .ok());
      ASSERT_TRUE(fs.Close(*fd).ok());
      durable.push_back(path);
    }
    EXPECT_TRUE(sim.ok()) << sim.Report();
    EXPECT_GT(sim.images_checked(), 0u);
  }
  ASSERT_TRUE(fs.SyncAll().ok());
  auto report = RunFsck((*sys)->volume());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->Summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace aerie
