// Randomized crash-point property test (paper §5.3.6): crash the system at
// random WAL-commit boundaries while a workload runs, reboot, recover, and
// require (a) a structurally sound volume (fsck clean) and (b) prefix
// semantics — every op acknowledged as applied is present; unshipped
// batched ops are absent without damage.
#include <gtest/gtest.h>

#include <string>

#include "src/common/rand.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/tfs/fsck.h"

namespace aerie {
namespace {

class CrashRandomTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/aerie_crashrand_" +
            std::to_string(GetParam()) + ".img";
    ::unlink(path_.c_str());
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::unique_ptr<AerieSystem> Boot(bool fresh) {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    options.region_path = path_;
    options.fresh = fresh;
    auto sys = AerieSystem::Create(options);
    EXPECT_TRUE(sys.ok()) << sys.status().ToString();
    return std::move(*sys);
  }

  std::string path_;
};

TEST_P(CrashRandomTest, RecoveryIsSoundAtRandomCrashPoints) {
  Rng rng(GetParam());

  // Phase 1: run a create/write/unlink workload with eager shipping, then
  // "crash" after a randomly chosen number of batches by flipping the
  // crash-after-WAL-commit switch (the injected crash leaves a committed
  // but unapplied record, the hardest state).
  std::vector<std::string> acknowledged;  // ops the TFS confirmed applied
  {
    auto sys = Boot(/*fresh=*/true);
    auto client = sys->NewClient(LibFs::Options{.eager_ship = true});
    ASSERT_TRUE(client.ok());
    Pxfs fs((*client)->fs());
    ASSERT_TRUE(fs.Mkdir("/w").ok());
    acknowledged.push_back("/w");

    const int crash_after = 5 + static_cast<int>(rng.Uniform(40));
    int completed = 0;
    for (int i = 0; i < 60; ++i) {
      if (completed == crash_after) {
        sys->tfs()->set_crash_after_log_commit(true);
      }
      const std::string path = "/w/f" + std::to_string(i);
      auto fd = fs.Open(path, kOpenCreate | kOpenWrite);
      if (!fd.ok()) {
        break;  // the injected crash fired
      }
      const std::string data = "payload " + std::to_string(i);
      bool ok = fs.Write(*fd, std::span<const char>(data.data(),
                                                    data.size()))
                    .ok();
      ok = fs.Close(*fd).ok() && ok;
      if (!ok) {
        break;
      }
      // Eager shipping means the op already round-tripped; if the crash
      // switch was armed, the *next* batch dies mid-pipeline.
      if (!sys->tfs()
               ->GetRoots()
               .pxfs_root.IsNull()) {  // always true; keeps structure clear
        completed++;
      }
      if (completed <= crash_after) {
        acknowledged.push_back(path);
      }
    }
    (*client)->AbandonForCrashTest();
  }

  // Phase 2: reboot + recover; fsck must be clean.
  {
    auto sys = Boot(/*fresh=*/false);
    auto report = RunFsck(sys->volume());
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok()) << report->Summary();

    // Every acknowledged op's file must exist with intact content.
    auto client = sys->NewClient();
    ASSERT_TRUE(client.ok());
    Pxfs fs((*client)->fs());
    for (size_t i = 1; i < acknowledged.size(); ++i) {
      auto st = fs.Stat(acknowledged[i]);
      // The final acknowledged op may coincide with the crash point; accept
      // present-or-absent for the last one, require presence otherwise.
      if (i + 1 < acknowledged.size()) {
        EXPECT_TRUE(st.ok()) << acknowledged[i];
      }
      if (st.ok()) {
        auto fd = fs.Open(acknowledged[i], kOpenRead);
        ASSERT_TRUE(fd.ok());
        char buf[64] = {};
        auto n = fs.Read(*fd, std::span<char>(buf, sizeof(buf)));
        ASSERT_TRUE(n.ok());
        EXPECT_TRUE(std::string_view(buf, *n).starts_with("payload "))
            << acknowledged[i];
        ASSERT_TRUE(fs.Close(*fd).ok());
      }
    }
    // The volume keeps working after recovery.
    ASSERT_TRUE(fs.Create("/w/after_recovery").ok());
    ASSERT_TRUE(fs.SyncAll().ok());
    auto report2 = RunFsck(sys->volume());
    ASSERT_TRUE(report2.ok());
    EXPECT_TRUE(report2->ok()) << report2->Summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRandomTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace aerie
