// FlatFS functional tests: put/get/erase semantics, capacity limits,
// rehash under load, concurrency, coexistence with PXFS on one volume.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class FlatFsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
    auto client = sys_->NewClient();
    ASSERT_TRUE(client.ok());
    client_ = std::move(*client);
    FlatFs::Options options_fs;
    options_fs.file_capacity = 16 << 10;
    flat_ = std::make_unique<FlatFs>(client_->fs(), options_fs);
  }

  void TearDown() override {
    flat_.reset();
    client_.reset();
    sys_.reset();
  }

  std::span<const char> Bytes(const std::string& s) {
    return std::span<const char>(s.data(), s.size());
  }

  std::unique_ptr<AerieSystem> sys_;
  std::unique_ptr<AerieSystem::Client> client_;
  std::unique_ptr<FlatFs> flat_;
};

TEST_F(FlatFsTest, PutGetRoundTrip) {
  ASSERT_TRUE(flat_->Put("msg:1", Bytes("first message")).ok());
  auto value = flat_->Get("msg:1");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "first message");
}

TEST_F(FlatFsTest, GetMissingKeyFails) {
  EXPECT_EQ(flat_->Get("absent").code(), ErrorCode::kNotFound);
  auto exists = flat_->Exists("absent");
  ASSERT_TRUE(exists.ok());
  EXPECT_FALSE(*exists);
}

TEST_F(FlatFsTest, PutReplacesValue) {
  ASSERT_TRUE(flat_->Put("k", Bytes("v1")).ok());
  ASSERT_TRUE(flat_->Put("k", Bytes("version two")).ok());
  EXPECT_EQ(*flat_->Get("k"), "version two");
  ASSERT_TRUE(flat_->Sync().ok());
  EXPECT_EQ(*flat_->Get("k"), "version two");
}

TEST_F(FlatFsTest, EraseRemoves) {
  ASSERT_TRUE(flat_->Put("gone", Bytes("bye")).ok());
  ASSERT_TRUE(flat_->Erase("gone").ok());
  EXPECT_EQ(flat_->Get("gone").code(), ErrorCode::kNotFound);
  EXPECT_EQ(flat_->Erase("gone").code(), ErrorCode::kNotFound);
  // Visible after sync too.
  ASSERT_TRUE(flat_->Sync().ok());
  EXPECT_EQ(flat_->Get("gone").code(), ErrorCode::kNotFound);
}

TEST_F(FlatFsTest, CapacityEnforced) {
  const std::string too_big((16 << 10) + 1, 'x');
  EXPECT_EQ(flat_->Put("big", Bytes(too_big)).code(),
            ErrorCode::kOutOfSpace);
  const std::string max_fit(16 << 10, 'x');
  EXPECT_TRUE(flat_->Put("fits", Bytes(max_fit)).ok());
  EXPECT_EQ(flat_->Get("fits")->size(), max_fit.size());
}

TEST_F(FlatFsTest, KeyValidation) {
  EXPECT_EQ(flat_->Put("", Bytes("x")).code(), ErrorCode::kInvalidArgument);
  const std::string long_key(Collection::kMaxKeyLen + 1, 'k');
  EXPECT_EQ(flat_->Put(long_key, Bytes("x")).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(FlatFsTest, BinaryValuesPreserved) {
  std::string binary(256, '\0');
  for (int i = 0; i < 256; ++i) {
    binary[static_cast<size_t>(i)] = static_cast<char>(i);
  }
  ASSERT_TRUE(flat_->Put("bin", Bytes(binary)).ok());
  EXPECT_EQ(*flat_->Get("bin"), binary);
}

TEST_F(FlatFsTest, ManyKeysSurviveRehashes) {
  constexpr int kKeys = 1500;
  for (int i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(
        flat_->Put("key" + std::to_string(i),
                   Bytes("value" + std::to_string(i)))
            .ok())
        << i;
  }
  ASSERT_TRUE(flat_->Sync().ok());
  for (int i = 0; i < kKeys; ++i) {
    auto value = flat_->Get("key" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << i;
    EXPECT_EQ(*value, "value" + std::to_string(i));
  }
}

TEST_F(FlatFsTest, ScanSeesAllLiveKeys) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(flat_->Put("s" + std::to_string(i), Bytes("v")).ok());
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(flat_->Erase("s" + std::to_string(2 * i)).ok());
  }
  std::set<std::string> keys;
  ASSERT_TRUE(flat_->Scan([&](std::string_view key) {
                  keys.insert(std::string(key));
                  return true;
                })
                  .ok());
  EXPECT_EQ(keys.size(), 25u);
  for (const auto& key : keys) {
    EXPECT_EQ(std::stoi(key.substr(1)) % 2, 1) << key;
  }
}

TEST_F(FlatFsTest, GetIntoSmallBufferTruncates) {
  ASSERT_TRUE(flat_->Put("k", Bytes("0123456789")).ok());
  char buf[4];
  auto n = flat_->Get("k", std::span<char>(buf, 4));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string_view(buf, 4), "0123");
}

TEST_F(FlatFsTest, ConcurrentPutsDistinctKeys) {
  constexpr int kThreads = 4;
  constexpr int kKeysEach = 50;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kKeysEach; ++i) {
        const std::string key =
            "c" + std::to_string(t) + "_" + std::to_string(i);
        if (!flat_->Put(key, std::span<const char>(key.data(), key.size()))
                 .ok()) {
          failures++;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(flat_->Sync().ok());
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kKeysEach; ++i) {
      const std::string key =
          "c" + std::to_string(t) + "_" + std::to_string(i);
      auto value = flat_->Get(key);
      ASSERT_TRUE(value.ok()) << key;
      EXPECT_EQ(*value, key);
    }
  }
}

TEST_F(FlatFsTest, VisibleToSecondClientAfterSync) {
  ASSERT_TRUE(flat_->Put("shared", Bytes("payload")).ok());
  ASSERT_TRUE(flat_->Sync().ok());
  client_->fs()->clerk()->ReleaseAllGlobals();

  auto client2 = sys_->NewClient();
  ASSERT_TRUE(client2.ok());
  FlatFs flat2((*client2)->fs());
  auto value = flat2.Get("shared");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(*value, "payload");
}

TEST_F(FlatFsTest, PxfsSeesFlatNamespaceAsCollection) {
  // Both interfaces share one volume and one TFS (paper §6.2 Discussion).
  ASSERT_TRUE(flat_->Put("dual-view", Bytes("same bytes")).ok());
  ASSERT_TRUE(flat_->Sync().ok());
  auto coll =
      Collection::Open(client_->fs()->read_context(),
                       client_->fs()->flat_root());
  ASSERT_TRUE(coll.ok());
  auto oid = coll->Lookup("dual-view");
  ASSERT_TRUE(oid.ok());
  auto file = MFile::Open(client_->fs()->read_context(), Oid(*oid));
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->single_extent());
  EXPECT_EQ(file->size(), 10u);
}

}  // namespace
}  // namespace aerie
