// Full-stack test over real Unix-domain-socket RPC (the paper's loopback
// transport): PXFS and FlatFS running with every client->service call going
// through the socket server.
#include <gtest/gtest.h>

#include <string>

#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

namespace aerie {
namespace {

class UdsStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    options.uds_path = ::testing::TempDir() + "/aerie_stack_" +
                       ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name() +
                       ".sock";
    auto sys = AerieSystem::Create(options);
    ASSERT_TRUE(sys.ok());
    sys_ = std::move(*sys);
  }

  std::unique_ptr<AerieSystem> sys_;
};

TEST_F(UdsStackTest, PxfsOverSockets) {
  auto client = sys_->NewUdsClient(LibFs::Options{});
  ASSERT_TRUE(client.ok());
  Pxfs fs((*client)->fs());

  ASSERT_TRUE(fs.Mkdir("/socketed").ok());
  const std::string data(20000, 's');
  auto fd = fs.Open("/socketed/file", kOpenCreate | kOpenWrite);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(
      fs.Write(*fd, std::span<const char>(data.data(), data.size())).ok());
  ASSERT_TRUE(fs.Close(*fd).ok());
  ASSERT_TRUE(fs.SyncAll().ok());

  auto rfd = fs.Open("/socketed/file", kOpenRead);
  ASSERT_TRUE(rfd.ok());
  std::string buf(data.size(), '\0');
  auto n = fs.Read(*rfd, std::span<char>(buf.data(), buf.size()));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(buf, data);
  ASSERT_TRUE(fs.Close(*rfd).ok());
  EXPECT_GT((*client)->transport()->calls_made(), 0u);
}

TEST_F(UdsStackTest, TwoSocketClientsShare) {
  auto c1 = sys_->NewUdsClient(LibFs::Options{});
  auto c2 = sys_->NewUdsClient(LibFs::Options{});
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  EXPECT_NE((*c1)->id(), (*c2)->id());

  Pxfs fs1((*c1)->fs());
  Pxfs fs2((*c2)->fs());
  ASSERT_TRUE(fs1.Create("/handoff").ok());
  // c2's open revokes c1's locks over the socket-registered session and
  // forces the batch ship.
  auto fd = fs2.Open("/handoff", kOpenRead);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(fs2.Close(*fd).ok());
}

TEST_F(UdsStackTest, FlatFsOverSockets) {
  auto client = sys_->NewUdsClient(LibFs::Options{});
  ASSERT_TRUE(client.ok());
  FlatFs flat((*client)->fs());
  for (int i = 0; i < 50; ++i) {
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(flat.Put("k" + std::to_string(i),
                         std::span<const char>(value.data(), value.size()))
                    .ok());
  }
  ASSERT_TRUE(flat.Sync().ok());
  for (int i = 0; i < 50; ++i) {
    auto value = flat.Get("k" + std::to_string(i));
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(*value, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace aerie
