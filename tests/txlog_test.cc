// Tests for the persistent redo log: append/commit/replay discipline,
// rollback, truncation, crash-prefix semantics, corruption detection.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/txlog/redo_log.h"

namespace aerie {
namespace {

class RedoLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto region = ScmRegion::CreateAnonymous(4 << 20);
    ASSERT_TRUE(region.ok());
    region_ = std::move(*region);
    auto log = RedoLog::Format(region_.get(), 4096, 1 << 20);
    ASSERT_TRUE(log.ok());
    log_ = std::make_unique<RedoLog>(std::move(*log));
  }

  std::vector<std::pair<uint32_t, std::string>> ReplayAll(
      const RedoLog& log) {
    std::vector<std::pair<uint32_t, std::string>> out;
    EXPECT_TRUE(log.Replay([&](uint32_t type,
                               std::span<const char> payload) -> Status {
                   out.emplace_back(type,
                                    std::string(payload.data(),
                                                payload.size()));
                   return OkStatus();
                 })
                    .ok());
    return out;
  }

  std::unique_ptr<ScmRegion> region_;
  std::unique_ptr<RedoLog> log_;
};

std::span<const char> Bytes(const std::string& s) {
  return std::span<const char>(s.data(), s.size());
}

TEST_F(RedoLogTest, AppendInvisibleUntilCommit) {
  ASSERT_TRUE(log_->Append(1, Bytes("hello")).ok());
  EXPECT_EQ(ReplayAll(*log_).size(), 0u);
  EXPECT_EQ(log_->pending_bytes(), 24u);  // header(16) + payload padded to 8
  ASSERT_TRUE(log_->Commit().ok());
  auto records = ReplayAll(*log_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 1u);
  EXPECT_EQ(records[0].second, "hello");
}

TEST_F(RedoLogTest, MultipleRecordsInOrder) {
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(log_->Append(i, Bytes("record" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(log_->Commit().ok());
  auto records = ReplayAll(*log_);
  ASSERT_EQ(records.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(records[i].first, i);
    EXPECT_EQ(records[i].second, "record" + std::to_string(i));
  }
}

TEST_F(RedoLogTest, RollbackDiscardsUncommitted) {
  ASSERT_TRUE(log_->Append(1, Bytes("keep")).ok());
  ASSERT_TRUE(log_->Commit().ok());
  ASSERT_TRUE(log_->Append(2, Bytes("drop")).ok());
  log_->Rollback();
  ASSERT_TRUE(log_->Commit().ok());
  auto records = ReplayAll(*log_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "keep");
}

TEST_F(RedoLogTest, TruncateEmptiesLog) {
  ASSERT_TRUE(log_->Append(1, Bytes("x")).ok());
  ASSERT_TRUE(log_->Commit().ok());
  log_->Truncate();
  EXPECT_EQ(log_->committed_bytes(), 0u);
  EXPECT_EQ(ReplayAll(*log_).size(), 0u);
  // Log is reusable after truncation.
  ASSERT_TRUE(log_->Append(2, Bytes("y")).ok());
  ASSERT_TRUE(log_->Commit().ok());
  EXPECT_EQ(ReplayAll(*log_).size(), 1u);
}

TEST_F(RedoLogTest, ReopenSeesOnlyCommittedPrefix) {
  // Simulates a crash: committed records survive; appended-but-uncommitted
  // records do not.
  ASSERT_TRUE(log_->Append(1, Bytes("committed")).ok());
  ASSERT_TRUE(log_->Commit().ok());
  ASSERT_TRUE(log_->Append(2, Bytes("in flight")).ok());
  // No commit: "crash" here.
  auto reopened = RedoLog::Open(region_.get(), 4096);
  ASSERT_TRUE(reopened.ok());
  auto records = ReplayAll(*reopened);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].second, "committed");
}

TEST_F(RedoLogTest, FullLogReportsOutOfSpace) {
  const std::string big(1 << 16, 'x');
  Status st = OkStatus();
  int appended = 0;
  while (st.ok()) {
    st = log_->Append(1, Bytes(big));
    if (st.ok()) {
      appended++;
    }
  }
  EXPECT_EQ(st.code(), ErrorCode::kOutOfSpace);
  EXPECT_GT(appended, 10);
}

TEST_F(RedoLogTest, CorruptedChecksumDetected) {
  ASSERT_TRUE(log_->Append(1, Bytes("payload!")).ok());
  ASSERT_TRUE(log_->Commit().ok());
  // Flip a payload byte behind the log's back.
  char* area = region_->PtrAt(4096) + 24;  // header rep + record header
  area[16] ^= 0x1;
  Status st = log_->Replay(
      [](uint32_t, std::span<const char>) { return OkStatus(); });
  EXPECT_EQ(st.code(), ErrorCode::kCorrupted);
}

TEST_F(RedoLogTest, OpenRejectsBadMagic) {
  auto bad = RedoLog::Open(region_.get(), 2 << 20);
  EXPECT_EQ(bad.code(), ErrorCode::kCorrupted);
}

TEST_F(RedoLogTest, EmptyPayloadRecord) {
  ASSERT_TRUE(log_->Append(42, {}).ok());
  ASSERT_TRUE(log_->Commit().ok());
  auto records = ReplayAll(*log_);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].first, 42u);
  EXPECT_TRUE(records[0].second.empty());
}

}  // namespace
}  // namespace aerie
