// Tests for OID encoding (paper §5.3.1).
#include <gtest/gtest.h>

#include "src/osd/oid.h"

namespace aerie {
namespace {

TEST(OidTest, EncodeDecodeRoundTrip) {
  const Oid oid = Oid::Make(ObjType::kMFile, 0x123400);
  EXPECT_EQ(oid.type(), ObjType::kMFile);
  EXPECT_EQ(oid.offset(), 0x123400u);
  EXPECT_FALSE(oid.IsNull());
}

TEST(OidTest, NullOid) {
  Oid oid;
  EXPECT_TRUE(oid.IsNull());
  EXPECT_EQ(oid.type(), ObjType::kNone);
  EXPECT_EQ(oid.offset(), 0u);
}

TEST(OidTest, MinimumObjectSizeIs64Bytes) {
  // Offsets are 64-byte granular: the low 6 bits carry the type.
  const Oid a = Oid::Make(ObjType::kCollection, 64);
  const Oid b = Oid::Make(ObjType::kCollection, 128);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.offset(), 64u);
  EXPECT_EQ(b.offset(), 128u);
}

TEST(OidTest, LargeOffsetsPreserved) {
  const uint64_t offset = (1ull << 45) + 4096;  // beyond 32-bit range
  const Oid oid = Oid::Make(ObjType::kExtent, offset);
  EXPECT_EQ(oid.offset(), offset);
  EXPECT_EQ(oid.type(), ObjType::kExtent);
}

TEST(OidTest, LockIdEqualsRawAndIsUniquePerObject) {
  const Oid a = Oid::Make(ObjType::kMFile, 4096);
  const Oid b = Oid::Make(ObjType::kCollection, 4096);
  EXPECT_EQ(a.lock_id(), a.raw());
  EXPECT_NE(a.lock_id(), b.lock_id());  // type participates
}

TEST(OidTest, SixtyFourTypesEncodable) {
  for (int t = 0; t < 64; ++t) {
    const Oid oid = Oid::Make(static_cast<ObjType>(t), 1 << 20);
    EXPECT_EQ(static_cast<int>(oid.type()), t);
    EXPECT_EQ(oid.offset(), 1u << 20);
  }
}

TEST(OidTest, RawRoundTrip) {
  const Oid oid = Oid::Make(ObjType::kPoolTable, 123456 * 64);
  const Oid copy(oid.raw());
  EXPECT_EQ(copy, oid);
}

}  // namespace
}  // namespace aerie
