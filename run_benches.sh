#!/usr/bin/env bash
# Thin wrapper kept for muscle memory; the sweep lives in tools/run_benches.sh
# (which also aggregates per-bench JSON records into BENCH_<date>.json).
set -euo pipefail
exec "$(dirname "$0")/tools/run_benches.sh" "$@"
