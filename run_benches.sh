#!/bin/bash
# Full benchmark sweep: one output section per paper table/figure.
# Scales are sized for a single-core host; AERIE_BENCH_SCALE=1.0 with longer
# windows reproduces the paper's configurations on bigger machines.
cd "$(dirname "$0")/build"
set -x
AERIE_BENCH_SCALE=0.1 ./bench/fig1_vfs_breakdown
AERIE_BENCH_SCALE=0.25 ./bench/table1_microbench
AERIE_BENCH_SCALE=0.2 AERIE_BENCH_SECONDS=3 ./bench/table2_filebench
AERIE_BENCH_SCALE=0.05 AERIE_BENCH_SECONDS=1.5 AERIE_BENCH_THREADS=4 ./bench/fig5_thread_scaling
AERIE_BENCH_SCALE=0.15 AERIE_BENCH_SECONDS=2 ./bench/table3_multiclient
AERIE_BENCH_SCALE=0.05 AERIE_BENCH_SECONDS=2 ./bench/fig6_write_latency
./bench/micro_permission_change
AERIE_BENCH_SCALE=0.1 AERIE_BENCH_SECONDS=2 ./bench/ablation_batching
AERIE_BENCH_SCALE=0.2 AERIE_BENCH_SECONDS=2 ./bench/ablation_name_cache
AERIE_BENCH_SCALE=0.1 AERIE_BENCH_SECONDS=2 ./bench/ablation_lock_modes
AERIE_BENCH_SCALE=0.05 AERIE_BENCH_SECONDS=1 ./bench/ablation_rpc_cost
./bench/gbench_primitives --benchmark_min_time=0.2
# Per-operation trace pass (separate short runs: span mode perturbs the
# throughput numbers above). Open the JSON in ui.perfetto.dev.
AERIE_OBS=spans AERIE_TRACE_FILE=trace_fig1.json \
  AERIE_BENCH_SCALE=0.02 ./bench/fig1_vfs_breakdown > /dev/null
AERIE_OBS=spans AERIE_TRACE_FILE=trace_table3.json \
  AERIE_BENCH_SCALE=0.05 AERIE_BENCH_SECONDS=0.5 ./bench/table3_multiclient > /dev/null
ls -l trace_fig1.json trace_table3.json
