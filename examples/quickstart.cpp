// Quickstart: bring up a complete Aerie deployment in one process, mount
// PXFS, and use the POSIX-style API.
//
//   build/examples/quickstart
//
// Walks through the paper's architecture hands-on: the SCM region, the
// trusted service, an untrusted client, direct data access, and the batched
// metadata path (watch the RPC counters).
#include <cstdio>
#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

using namespace aerie;

#define DIE_UNLESS(expr)                                              \
  do {                                                                \
    auto _st = (expr);                                                \
    if (!_st.ok()) {                                                  \
      std::fprintf(stderr, "error at %s:%d: %s\n", __FILE__,          \
                   __LINE__, _st.ToString().c_str());                 \
      return 1;                                                       \
    }                                                                 \
  } while (0)

int main() {
  // 1. One call assembles the Figure-2 architecture: emulated SCM, the
  //    kernel SCM manager, a formatted volume, the lock service and TFS.
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto system = AerieSystem::Create(options);
  if (!system.ok()) {
    std::fprintf(stderr, "system: %s\n", system.status().ToString().c_str());
    return 1;
  }
  std::printf("Aerie up: %zu MB of emulated SCM\n",
              static_cast<size_t>((*system)->scm_region()->size() >> 20));

  // 2. Connect an untrusted client (its own libFS: clerk, pools, batch).
  LibFs::Options libfs_options;
  libfs_options.flush_interval_ms = 0;  // show the batch explicitly below
  auto client = (*system)->NewClient(libfs_options);
  if (!client.ok()) {
    std::fprintf(stderr, "client: %s\n", client.status().ToString().c_str());
    return 1;
  }
  Pxfs fs((*client)->fs());

  // 3. POSIX-style usage.
  DIE_UNLESS(fs.Mkdir("/projects"));
  DIE_UNLESS(fs.Mkdir("/projects/aerie"));

  auto fd = fs.Open("/projects/aerie/notes.txt", kOpenCreate | kOpenWrite);
  if (!fd.ok()) {
    return 1;
  }
  const std::string text =
      "Aerie: the file-system interface lives in the library.\n";
  DIE_UNLESS(fs.Write(*fd, std::span<const char>(text.data(), text.size()))
                 .status());
  DIE_UNLESS(fs.Close(*fd));

  // Metadata is batched client-side until sync / lock release (§5.3.5).
  std::printf("ops buffered before sync: %llu\n",
              static_cast<unsigned long long>(
                  (*client)->fs()->pending_ops()));
  DIE_UNLESS(fs.SyncAll());
  std::printf("ops buffered after sync:  %llu\n",
              static_cast<unsigned long long>(
                  (*client)->fs()->pending_ops()));

  // 4. Reads go straight to SCM — no service on the path.
  const uint64_t rpcs_before = (*client)->transport()->calls_made();
  auto rfd = fs.Open("/projects/aerie/notes.txt", kOpenRead);
  if (!rfd.ok()) {
    return 1;
  }
  char buf[256] = {};
  auto n = fs.Read(*rfd, std::span<char>(buf, sizeof(buf)));
  DIE_UNLESS(n.status());
  DIE_UNLESS(fs.Close(*rfd));
  std::printf("read back %llu bytes: %s",
              static_cast<unsigned long long>(*n), buf);
  std::printf("RPCs for warm open+read+close: %llu\n",
              static_cast<unsigned long long>(
                  (*client)->transport()->calls_made() - rpcs_before));

  // 5. Directory listing and stat.
  auto entries = fs.ReadDir("/projects/aerie");
  if (entries.ok()) {
    for (const auto& entry : *entries) {
      auto st = fs.Stat("/projects/aerie/" + entry.name);
      std::printf("  %-12s %6llu bytes  links=%llu\n", entry.name.c_str(),
                  st.ok() ? static_cast<unsigned long long>(st->size) : 0,
                  st.ok() ? static_cast<unsigned long long>(st->link_count)
                          : 0);
    }
  }
  std::printf("quickstart OK\n");
  return 0;
}
