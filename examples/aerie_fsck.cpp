// aerie_fsck: inspect and integrity-check a persisted Aerie volume image.
//
//   build/examples/aerie_fsck [image-path]
//
// With no argument it builds a demo image (populate, crash mid-batch,
// recover) and checks it at each stage — a guided tour of the WAL recovery
// story. With a path it opens that image read-write, runs recovery and
// prints the fsck report, like a conventional fsck invocation.
#include <cstdio>
#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"
#include "src/tfs/fsck.h"

using namespace aerie;

namespace {

int CheckImage(const std::string& path) {
  AerieSystem::Options options;
  options.region_bytes = 256ull << 20;
  options.region_path = path;
  options.fresh = false;  // mount + recover
  auto system = AerieSystem::Create(options);
  if (!system.ok()) {
    std::fprintf(stderr, "mount failed: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }
  auto report = RunFsck((*system)->volume());
  if (!report.ok()) {
    std::fprintf(stderr, "fsck failed to run: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  for (const auto& message : report->messages) {
    std::printf("  ! %s\n", message.c_str());
  }
  return report->ok() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    return CheckImage(argv[1]);
  }

  const std::string image = "/tmp/aerie_fsck_demo.img";
  ::unlink(image.c_str());
  std::printf("== building demo image %s\n", image.c_str());
  {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    options.region_path = image;
    auto system = AerieSystem::Create(options);
    if (!system.ok()) {
      return 1;
    }
    auto client = (*system)->NewClient();
    if (!client.ok()) {
      return 1;
    }
    Pxfs fs((*client)->fs());
    (void)fs.Mkdir("/etc");
    (void)fs.Mkdir("/var");
    for (int i = 0; i < 25; ++i) {
      const std::string path = "/var/log" + std::to_string(i);
      auto fd = fs.Open(path, kOpenCreate | kOpenWrite);
      if (fd.ok()) {
        const std::string data(2000, 'd');
        (void)fs.Write(*fd, std::span<const char>(data.data(), data.size()));
        (void)fs.Close(*fd);
      }
    }
    (void)fs.SyncAll();

    // Leave the system in the nastiest state: a batch committed to the WAL
    // but never applied, plus an abandoned client with live pools.
    (*system)->tfs()->set_crash_after_log_commit(true);
    (void)fs.Create("/etc/in-flight.conf");
    (void)fs.SyncAll();  // commits to the WAL, "crashes" before apply
    (*client)->AbandonForCrashTest();
    std::printf("   populated; crashed mid-batch with a committed WAL "
                "record\n");
  }

  std::printf("== fsck after reboot (recovery replays the WAL, reclaims "
              "pools)\n");
  const int rc = CheckImage(image);
  std::printf("== verifying the in-flight file was recovered\n");
  {
    AerieSystem::Options options;
    options.region_bytes = 256ull << 20;
    options.region_path = image;
    options.fresh = false;
    auto system = AerieSystem::Create(options);
    if (system.ok()) {
      auto client = (*system)->NewClient();
      if (client.ok()) {
        Pxfs fs((*client)->fs());
        std::printf("   /etc/in-flight.conf: %s\n",
                    fs.Stat("/etc/in-flight.conf").status().ToString().c_str());
      }
    }
  }
  ::unlink(image.c_str());
  return rc;
}
