// Mail store on FlatFS: the paper's motivating example for interface
// specialization (§1: "a mail message store that operates on many small
// files can have a get/put interface rather than open/read/write/close").
//
//   build/examples/mailstore
//
// Stores messages keyed "<mailbox>:<id>", demonstrates put/get/erase and a
// mailbox scan, then compares the same access pattern against PXFS with
// one-file-per-message to show why the specialized interface wins.
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

using namespace aerie;

namespace {

std::string MakeMessage(int id) {
  return "From: user" + std::to_string(id % 7) +
         "@example.com\nSubject: message " + std::to_string(id) +
         "\n\nBody of message " + std::to_string(id) + ".\n";
}

}  // namespace

int main() {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto system = AerieSystem::Create(options);
  if (!system.ok()) {
    return 1;
  }
  auto client = (*system)->NewClient();
  if (!client.ok()) {
    return 1;
  }

  FlatFs::Options flat_options;
  flat_options.file_capacity = 16 << 10;  // mail messages are small
  FlatFs mail((*client)->fs(), flat_options);

  constexpr int kMessages = 500;

  // --- Deliver mail: one put per message, no open/close bookkeeping. ---
  Stopwatch deliver;
  for (int id = 0; id < kMessages; ++id) {
    const std::string key = "inbox:" + std::to_string(id);
    const std::string body = MakeMessage(id);
    if (!mail.Put(key, std::span<const char>(body.data(), body.size()))
             .ok()) {
      std::fprintf(stderr, "put failed for %s\n", key.c_str());
      return 1;
    }
  }
  const double put_us = deliver.ElapsedMicros() / kMessages;

  // --- Read mail: one get per message. ---
  Stopwatch fetch;
  for (int id = 0; id < kMessages; ++id) {
    auto message = mail.Get("inbox:" + std::to_string(id));
    if (!message.ok()) {
      return 1;
    }
  }
  const double get_us = fetch.ElapsedMicros() / kMessages;

  // --- Expire old mail. ---
  for (int id = 0; id < kMessages / 2; ++id) {
    (void)mail.Erase("inbox:" + std::to_string(id));
  }
  int remaining = 0;
  (void)mail.Scan([&](std::string_view) {
    remaining++;
    return true;
  });
  std::printf("FlatFS mailstore: put %.2fus/msg, get %.2fus/msg, "
              "%d messages after expiry\n",
              put_us, get_us, remaining);

  // --- The same store through POSIX, for contrast (paper §7.3.2). ---
  Pxfs posix((*client)->fs());
  (void)posix.Mkdir("/mail");
  Stopwatch posix_deliver;
  for (int id = 0; id < kMessages; ++id) {
    const std::string path = "/mail/" + std::to_string(id);
    auto fd = posix.Open(path, kOpenCreate | kOpenWrite);
    if (!fd.ok()) {
      return 1;
    }
    const std::string body = MakeMessage(id);
    (void)posix.Write(*fd, std::span<const char>(body.data(), body.size()));
    (void)posix.Close(*fd);
  }
  const double posix_put_us = posix_deliver.ElapsedMicros() / kMessages;

  Stopwatch posix_fetch;
  char buf[16 << 10];
  for (int id = 0; id < kMessages; ++id) {
    auto fd = posix.Open("/mail/" + std::to_string(id), kOpenRead);
    if (!fd.ok()) {
      return 1;
    }
    (void)posix.Read(*fd, std::span<char>(buf, sizeof(buf)));
    (void)posix.Close(*fd);
  }
  const double posix_get_us = posix_fetch.ElapsedMicros() / kMessages;

  std::printf("PXFS   mailstore: create+write+close %.2fus/msg, "
              "open+read+close %.2fus/msg\n",
              posix_put_us, posix_get_us);
  std::printf("specialization speedup: put %.1fx, get %.1fx\n",
              posix_put_us / put_us, posix_get_us / get_us);
  return 0;
}
