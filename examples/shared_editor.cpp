// Two mutually-distrustful clients share a file: the paper's "life of a
// shared file" (§4.3), observable step by step.
//
//   build/examples/shared_editor
//
// Client A creates and writes a document (metadata batched locally).
// Client B opens it — the lock service revokes A's locks, A ships its
// batch, and B reads A's data directly from SCM. B then appends; A sees the
// change. Finally B deletes the file while A still has it open: A keeps
// reading through its descriptor until close (unlink-while-open, §6.1).
#include <cstdio>
#include <cstring>
#include <string>

#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

using namespace aerie;

int main() {
  AerieSystem::Options options;
  options.region_bytes = 512ull << 20;
  auto system = AerieSystem::Create(options);
  if (!system.ok()) {
    return 1;
  }
  auto a = (*system)->NewClient();
  auto b = (*system)->NewClient();
  if (!a.ok() || !b.ok()) {
    return 1;
  }
  Pxfs alice((*a)->fs());
  Pxfs bob((*b)->fs());

  // --- Alice drafts the document. ---
  auto fd = alice.Open("/draft.md", kOpenCreate | kOpenWrite);
  if (!fd.ok()) {
    return 1;
  }
  const std::string v1 = "# Design doc\nAlice's first draft.\n";
  (void)alice.Write(*fd, std::span<const char>(v1.data(), v1.size()));
  (void)alice.Close(*fd);
  std::printf("[alice] wrote draft; %llu metadata ops still batched "
              "locally\n",
              static_cast<unsigned long long>((*a)->fs()->pending_ops()));

  // --- Bob opens it: revocation ships Alice's batch automatically. ---
  auto bob_fd = bob.Open("/draft.md", kOpenRead | kOpenWrite);
  if (!bob_fd.ok()) {
    std::fprintf(stderr, "[bob] open failed: %s\n",
                 bob_fd.status().ToString().c_str());
    return 1;
  }
  std::printf("[alice] after bob's open: %llu ops batched (revocation "
              "forced the ship)\n",
              static_cast<unsigned long long>((*a)->fs()->pending_ops()));
  char buf[512] = {};
  auto n = bob.Read(*bob_fd, std::span<char>(buf, sizeof(buf)));
  std::printf("[bob] read %llu bytes:\n%s",
              n.ok() ? static_cast<unsigned long long>(*n) : 0, buf);

  // --- Bob appends a review note. ---
  const std::string note = "Bob: looks good, shipping it.\n";
  (void)bob.Pwrite(*bob_fd, n.ok() ? *n : 0,
                   std::span<const char>(note.data(), note.size()));
  (void)bob.Close(*bob_fd);
  (void)bob.SyncAll();

  auto alice_fd = alice.Open("/draft.md", kOpenRead);
  if (!alice_fd.ok()) {
    return 1;
  }
  std::memset(buf, 0, sizeof(buf));
  (void)alice.Read(*alice_fd, std::span<char>(buf, sizeof(buf)));
  std::printf("[alice] sees bob's note:\n%s", buf);

  // --- Bob deletes it while Alice still has it open (§6.1). ---
  (void)bob.Unlink("/draft.md");
  (void)bob.SyncAll();
  std::printf("[bob] unlinked /draft.md\n");
  std::printf("[bob] stat now: %s\n",
              bob.Stat("/draft.md").status().ToString().c_str());

  std::memset(buf, 0, sizeof(buf));
  (void)alice.Seek(*alice_fd, 0);
  auto n2 = alice.Read(*alice_fd, std::span<char>(buf, sizeof(buf)));
  std::printf("[alice] still reads %llu bytes through her open fd "
              "(storage reclaim deferred)\n",
              n2.ok() ? static_cast<unsigned long long>(*n2) : 0);
  (void)alice.Close(*alice_fd);
  std::printf("[alice] closed; the TFS reclaims the orphaned file\n");
  return 0;
}
