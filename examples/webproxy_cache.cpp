// A web-proxy object cache — the workload FlatFS is specialized for
// (paper §6.2, §7.3.2) — with both interfaces running side by side over the
// SAME volume and trusted service.
//
//   build/examples/webproxy_cache
//
// Simulates a proxy: cache misses store a fetched object (put / create),
// cache hits read it back (get / open-read-close), evictions remove it.
// Prints per-interface latency and the op counts each path needed.
#include <cstdio>
#include <string>

#include "src/common/clock.h"
#include "src/common/rand.h"
#include "src/flatfs/flatfs.h"
#include "src/libfs/system.h"
#include "src/pxfs/pxfs.h"

using namespace aerie;

namespace {

// A fake fetched web object (~8KB of HTML).
std::string FetchFromOrigin(uint64_t url_id) {
  std::string body = "<html><!-- object " + std::to_string(url_id) + " -->";
  body.resize(8 << 10, 'x');
  return body;
}

}  // namespace

int main() {
  AerieSystem::Options options;
  options.region_bytes = 1ull << 30;
  auto system = AerieSystem::Create(options);
  if (!system.ok()) {
    return 1;
  }
  auto client = (*system)->NewClient();
  if (!client.ok()) {
    return 1;
  }

  FlatFs::Options flat_options;
  flat_options.file_capacity = 16 << 10;
  FlatFs flat_cache((*client)->fs(), flat_options);
  Pxfs posix_cache((*client)->fs());
  (void)posix_cache.Mkdir("/proxycache");

  constexpr int kRequests = 2000;
  constexpr uint64_t kUrlSpace = 300;  // Zipf-ish reuse via small id space
  Rng rng(2026);

  // --- Serve the request stream through FlatFS. ---
  uint64_t flat_hits = 0;
  std::string buf(16 << 10, '\0');
  Stopwatch flat_clock;
  for (int i = 0; i < kRequests; ++i) {
    const uint64_t url = rng.Uniform(kUrlSpace);
    const std::string key = "url:" + std::to_string(url);
    auto object = flat_cache.Get(key, std::span<char>(buf.data(), buf.size()));
    if (object.ok()) {
      flat_hits++;
    } else {
      const std::string body = FetchFromOrigin(url);
      (void)flat_cache.Put(key,
                           std::span<const char>(body.data(), body.size()));
    }
    if (rng.Chance(1, 50)) {  // occasional eviction
      (void)flat_cache.Erase(
          "url:" + std::to_string(rng.Uniform(kUrlSpace)));
    }
  }
  const double flat_us = flat_clock.ElapsedMicros() / kRequests;

  // --- The same stream through the POSIX interface. ---
  rng.Seed(2026);
  uint64_t posix_hits = 0;
  Stopwatch posix_clock;
  for (int i = 0; i < kRequests; ++i) {
    const uint64_t url = rng.Uniform(kUrlSpace);
    const std::string path = "/proxycache/u" + std::to_string(url);
    auto fd = posix_cache.Open(path, kOpenRead);
    if (fd.ok()) {
      posix_hits++;
      (void)posix_cache.Read(*fd, std::span<char>(buf.data(), buf.size()));
      (void)posix_cache.Close(*fd);
    } else {
      const std::string body = FetchFromOrigin(url);
      auto wfd = posix_cache.Open(path, kOpenCreate | kOpenWrite);
      if (wfd.ok()) {
        (void)posix_cache.Write(
            *wfd, std::span<const char>(body.data(), body.size()));
        (void)posix_cache.Close(*wfd);
      }
    }
    if (rng.Chance(1, 50)) {
      (void)posix_cache.Unlink("/proxycache/u" +
                               std::to_string(rng.Uniform(kUrlSpace)));
    }
  }
  const double posix_us = posix_clock.ElapsedMicros() / kRequests;

  std::printf("web-proxy cache, %d requests over %llu URLs\n", kRequests,
              static_cast<unsigned long long>(kUrlSpace));
  std::printf("  FlatFS (get/put/erase):            %6.2f us/request "
              "(%llu hits)\n",
              flat_us, static_cast<unsigned long long>(flat_hits));
  std::printf("  PXFS   (open/read/write/close):    %6.2f us/request "
              "(%llu hits)\n",
              posix_us, static_cast<unsigned long long>(posix_hits));
  std::printf("  specialization speedup:            %6.2fx\n",
              posix_us / flat_us);
  return 0;
}
