# Empty dependencies file for flatfs_test.
# This may be replaced when dependencies are built.
