file(REMOVE_RECURSE
  "CMakeFiles/flatfs_test.dir/flatfs_test.cc.o"
  "CMakeFiles/flatfs_test.dir/flatfs_test.cc.o.d"
  "flatfs_test"
  "flatfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
