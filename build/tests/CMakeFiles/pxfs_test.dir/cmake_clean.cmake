file(REMOVE_RECURSE
  "CMakeFiles/pxfs_test.dir/pxfs_test.cc.o"
  "CMakeFiles/pxfs_test.dir/pxfs_test.cc.o.d"
  "pxfs_test"
  "pxfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
