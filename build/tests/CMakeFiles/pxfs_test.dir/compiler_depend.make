# Empty compiler generated dependencies file for pxfs_test.
# This may be replaced when dependencies are built.
