file(REMOVE_RECURSE
  "CMakeFiles/tfs_test.dir/tfs_test.cc.o"
  "CMakeFiles/tfs_test.dir/tfs_test.cc.o.d"
  "tfs_test"
  "tfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
