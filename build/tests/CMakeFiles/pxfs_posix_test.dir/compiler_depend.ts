# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pxfs_posix_test.
