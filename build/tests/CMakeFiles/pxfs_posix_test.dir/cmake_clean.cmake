file(REMOVE_RECURSE
  "CMakeFiles/pxfs_posix_test.dir/pxfs_posix_test.cc.o"
  "CMakeFiles/pxfs_posix_test.dir/pxfs_posix_test.cc.o.d"
  "pxfs_posix_test"
  "pxfs_posix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxfs_posix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
