# Empty dependencies file for pxfs_posix_test.
# This may be replaced when dependencies are built.
