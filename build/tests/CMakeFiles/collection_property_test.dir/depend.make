# Empty dependencies file for collection_property_test.
# This may be replaced when dependencies are built.
