file(REMOVE_RECURSE
  "CMakeFiles/collection_property_test.dir/collection_property_test.cc.o"
  "CMakeFiles/collection_property_test.dir/collection_property_test.cc.o.d"
  "collection_property_test"
  "collection_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collection_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
