file(REMOVE_RECURSE
  "CMakeFiles/libfs_test.dir/libfs_test.cc.o"
  "CMakeFiles/libfs_test.dir/libfs_test.cc.o.d"
  "libfs_test"
  "libfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
