# Empty compiler generated dependencies file for libfs_test.
# This may be replaced when dependencies are built.
