# Empty dependencies file for flatfs_property_test.
# This may be replaced when dependencies are built.
