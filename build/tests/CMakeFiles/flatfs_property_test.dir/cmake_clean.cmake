file(REMOVE_RECURSE
  "CMakeFiles/flatfs_property_test.dir/flatfs_property_test.cc.o"
  "CMakeFiles/flatfs_property_test.dir/flatfs_property_test.cc.o.d"
  "flatfs_property_test"
  "flatfs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatfs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
