
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/fuzz_test.dir/fuzz_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aerie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/aerie_scm.dir/DependInfo.cmake"
  "/root/repo/build/src/txlog/CMakeFiles/aerie_txlog.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/aerie_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/aerie_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/osd/CMakeFiles/aerie_osd.dir/DependInfo.cmake"
  "/root/repo/build/src/tfs/CMakeFiles/aerie_tfs.dir/DependInfo.cmake"
  "/root/repo/build/src/libfs/CMakeFiles/aerie_libfs.dir/DependInfo.cmake"
  "/root/repo/build/src/pxfs/CMakeFiles/aerie_pxfs.dir/DependInfo.cmake"
  "/root/repo/build/src/flatfs/CMakeFiles/aerie_flatfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
