# Empty compiler generated dependencies file for tfs_concurrency_test.
# This may be replaced when dependencies are built.
