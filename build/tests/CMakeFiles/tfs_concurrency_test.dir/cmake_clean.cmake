file(REMOVE_RECURSE
  "CMakeFiles/tfs_concurrency_test.dir/tfs_concurrency_test.cc.o"
  "CMakeFiles/tfs_concurrency_test.dir/tfs_concurrency_test.cc.o.d"
  "tfs_concurrency_test"
  "tfs_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfs_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
