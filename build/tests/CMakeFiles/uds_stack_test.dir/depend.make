# Empty dependencies file for uds_stack_test.
# This may be replaced when dependencies are built.
