file(REMOVE_RECURSE
  "CMakeFiles/uds_stack_test.dir/uds_stack_test.cc.o"
  "CMakeFiles/uds_stack_test.dir/uds_stack_test.cc.o.d"
  "uds_stack_test"
  "uds_stack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uds_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
