file(REMOVE_RECURSE
  "CMakeFiles/tfs_recovery_test.dir/tfs_recovery_test.cc.o"
  "CMakeFiles/tfs_recovery_test.dir/tfs_recovery_test.cc.o.d"
  "tfs_recovery_test"
  "tfs_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfs_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
