# Empty dependencies file for tfs_recovery_test.
# This may be replaced when dependencies are built.
