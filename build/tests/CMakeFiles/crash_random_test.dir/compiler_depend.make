# Empty compiler generated dependencies file for crash_random_test.
# This may be replaced when dependencies are built.
