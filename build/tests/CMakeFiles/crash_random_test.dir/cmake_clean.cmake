file(REMOVE_RECURSE
  "CMakeFiles/crash_random_test.dir/crash_random_test.cc.o"
  "CMakeFiles/crash_random_test.dir/crash_random_test.cc.o.d"
  "crash_random_test"
  "crash_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
