file(REMOVE_RECURSE
  "CMakeFiles/scm_pmem_test.dir/scm_pmem_test.cc.o"
  "CMakeFiles/scm_pmem_test.dir/scm_pmem_test.cc.o.d"
  "scm_pmem_test"
  "scm_pmem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_pmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
