file(REMOVE_RECURSE
  "CMakeFiles/oid_test.dir/oid_test.cc.o"
  "CMakeFiles/oid_test.dir/oid_test.cc.o.d"
  "oid_test"
  "oid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
