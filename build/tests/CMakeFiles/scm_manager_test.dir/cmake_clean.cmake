file(REMOVE_RECURSE
  "CMakeFiles/scm_manager_test.dir/scm_manager_test.cc.o"
  "CMakeFiles/scm_manager_test.dir/scm_manager_test.cc.o.d"
  "scm_manager_test"
  "scm_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scm_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
