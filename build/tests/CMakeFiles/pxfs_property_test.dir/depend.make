# Empty dependencies file for pxfs_property_test.
# This may be replaced when dependencies are built.
