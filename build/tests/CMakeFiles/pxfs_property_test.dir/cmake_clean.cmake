file(REMOVE_RECURSE
  "CMakeFiles/pxfs_property_test.dir/pxfs_property_test.cc.o"
  "CMakeFiles/pxfs_property_test.dir/pxfs_property_test.cc.o.d"
  "pxfs_property_test"
  "pxfs_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pxfs_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
