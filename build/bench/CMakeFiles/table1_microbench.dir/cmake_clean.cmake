file(REMOVE_RECURSE
  "CMakeFiles/table1_microbench.dir/table1_microbench.cpp.o"
  "CMakeFiles/table1_microbench.dir/table1_microbench.cpp.o.d"
  "table1_microbench"
  "table1_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
