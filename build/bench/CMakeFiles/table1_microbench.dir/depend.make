# Empty dependencies file for table1_microbench.
# This may be replaced when dependencies are built.
