# Empty compiler generated dependencies file for ablation_name_cache.
# This may be replaced when dependencies are built.
