file(REMOVE_RECURSE
  "CMakeFiles/ablation_name_cache.dir/ablation_name_cache.cpp.o"
  "CMakeFiles/ablation_name_cache.dir/ablation_name_cache.cpp.o.d"
  "ablation_name_cache"
  "ablation_name_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_name_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
