# Empty compiler generated dependencies file for table3_multiclient.
# This may be replaced when dependencies are built.
