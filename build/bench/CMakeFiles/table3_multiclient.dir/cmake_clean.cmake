file(REMOVE_RECURSE
  "CMakeFiles/table3_multiclient.dir/table3_multiclient.cpp.o"
  "CMakeFiles/table3_multiclient.dir/table3_multiclient.cpp.o.d"
  "table3_multiclient"
  "table3_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
