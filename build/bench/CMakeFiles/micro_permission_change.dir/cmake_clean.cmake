file(REMOVE_RECURSE
  "CMakeFiles/micro_permission_change.dir/micro_permission_change.cpp.o"
  "CMakeFiles/micro_permission_change.dir/micro_permission_change.cpp.o.d"
  "micro_permission_change"
  "micro_permission_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_permission_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
