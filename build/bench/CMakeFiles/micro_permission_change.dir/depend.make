# Empty dependencies file for micro_permission_change.
# This may be replaced when dependencies are built.
