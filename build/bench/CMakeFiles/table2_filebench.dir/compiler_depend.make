# Empty compiler generated dependencies file for table2_filebench.
# This may be replaced when dependencies are built.
