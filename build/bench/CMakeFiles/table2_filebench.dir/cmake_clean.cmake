file(REMOVE_RECURSE
  "CMakeFiles/table2_filebench.dir/table2_filebench.cpp.o"
  "CMakeFiles/table2_filebench.dir/table2_filebench.cpp.o.d"
  "table2_filebench"
  "table2_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
