# Empty compiler generated dependencies file for fig1_vfs_breakdown.
# This may be replaced when dependencies are built.
