file(REMOVE_RECURSE
  "CMakeFiles/ablation_rpc_cost.dir/ablation_rpc_cost.cpp.o"
  "CMakeFiles/ablation_rpc_cost.dir/ablation_rpc_cost.cpp.o.d"
  "ablation_rpc_cost"
  "ablation_rpc_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rpc_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
