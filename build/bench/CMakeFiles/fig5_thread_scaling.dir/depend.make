# Empty dependencies file for fig5_thread_scaling.
# This may be replaced when dependencies are built.
