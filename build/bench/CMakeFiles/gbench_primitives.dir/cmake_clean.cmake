file(REMOVE_RECURSE
  "CMakeFiles/gbench_primitives.dir/gbench_primitives.cpp.o"
  "CMakeFiles/gbench_primitives.dir/gbench_primitives.cpp.o.d"
  "gbench_primitives"
  "gbench_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
