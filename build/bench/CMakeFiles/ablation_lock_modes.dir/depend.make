# Empty dependencies file for ablation_lock_modes.
# This may be replaced when dependencies are built.
