file(REMOVE_RECURSE
  "CMakeFiles/ablation_lock_modes.dir/ablation_lock_modes.cpp.o"
  "CMakeFiles/ablation_lock_modes.dir/ablation_lock_modes.cpp.o.d"
  "ablation_lock_modes"
  "ablation_lock_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lock_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
