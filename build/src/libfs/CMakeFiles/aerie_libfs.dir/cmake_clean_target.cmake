file(REMOVE_RECURSE
  "libaerie_libfs.a"
)
