file(REMOVE_RECURSE
  "CMakeFiles/aerie_libfs.dir/client.cc.o"
  "CMakeFiles/aerie_libfs.dir/client.cc.o.d"
  "CMakeFiles/aerie_libfs.dir/system.cc.o"
  "CMakeFiles/aerie_libfs.dir/system.cc.o.d"
  "libaerie_libfs.a"
  "libaerie_libfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_libfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
