# Empty compiler generated dependencies file for aerie_libfs.
# This may be replaced when dependencies are built.
