# Empty compiler generated dependencies file for aerie_rpc.
# This may be replaced when dependencies are built.
