file(REMOVE_RECURSE
  "libaerie_rpc.a"
)
