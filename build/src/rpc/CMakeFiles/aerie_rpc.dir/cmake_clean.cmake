file(REMOVE_RECURSE
  "CMakeFiles/aerie_rpc.dir/socket.cc.o"
  "CMakeFiles/aerie_rpc.dir/socket.cc.o.d"
  "libaerie_rpc.a"
  "libaerie_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
