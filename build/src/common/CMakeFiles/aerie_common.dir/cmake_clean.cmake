file(REMOVE_RECURSE
  "CMakeFiles/aerie_common.dir/histogram.cc.o"
  "CMakeFiles/aerie_common.dir/histogram.cc.o.d"
  "CMakeFiles/aerie_common.dir/status.cc.o"
  "CMakeFiles/aerie_common.dir/status.cc.o.d"
  "libaerie_common.a"
  "libaerie_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
