# Empty compiler generated dependencies file for aerie_common.
# This may be replaced when dependencies are built.
