file(REMOVE_RECURSE
  "libaerie_common.a"
)
