# Empty dependencies file for aerie_workload.
# This may be replaced when dependencies are built.
