file(REMOVE_RECURSE
  "CMakeFiles/aerie_workload.dir/filebench.cc.o"
  "CMakeFiles/aerie_workload.dir/filebench.cc.o.d"
  "CMakeFiles/aerie_workload.dir/microbench.cc.o"
  "CMakeFiles/aerie_workload.dir/microbench.cc.o.d"
  "CMakeFiles/aerie_workload.dir/sut.cc.o"
  "CMakeFiles/aerie_workload.dir/sut.cc.o.d"
  "libaerie_workload.a"
  "libaerie_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
