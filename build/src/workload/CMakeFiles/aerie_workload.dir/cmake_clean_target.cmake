file(REMOVE_RECURSE
  "libaerie_workload.a"
)
