file(REMOVE_RECURSE
  "CMakeFiles/aerie_scm.dir/manager.cc.o"
  "CMakeFiles/aerie_scm.dir/manager.cc.o.d"
  "CMakeFiles/aerie_scm.dir/pmem.cc.o"
  "CMakeFiles/aerie_scm.dir/pmem.cc.o.d"
  "libaerie_scm.a"
  "libaerie_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
