# Empty dependencies file for aerie_scm.
# This may be replaced when dependencies are built.
