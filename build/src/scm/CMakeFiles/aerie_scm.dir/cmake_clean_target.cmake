file(REMOVE_RECURSE
  "libaerie_scm.a"
)
