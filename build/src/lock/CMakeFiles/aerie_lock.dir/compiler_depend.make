# Empty compiler generated dependencies file for aerie_lock.
# This may be replaced when dependencies are built.
