
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lock/clerk.cc" "src/lock/CMakeFiles/aerie_lock.dir/clerk.cc.o" "gcc" "src/lock/CMakeFiles/aerie_lock.dir/clerk.cc.o.d"
  "/root/repo/src/lock/lock_service.cc" "src/lock/CMakeFiles/aerie_lock.dir/lock_service.cc.o" "gcc" "src/lock/CMakeFiles/aerie_lock.dir/lock_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aerie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/aerie_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
