file(REMOVE_RECURSE
  "CMakeFiles/aerie_lock.dir/clerk.cc.o"
  "CMakeFiles/aerie_lock.dir/clerk.cc.o.d"
  "CMakeFiles/aerie_lock.dir/lock_service.cc.o"
  "CMakeFiles/aerie_lock.dir/lock_service.cc.o.d"
  "libaerie_lock.a"
  "libaerie_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
