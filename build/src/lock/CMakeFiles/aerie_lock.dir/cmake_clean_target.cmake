file(REMOVE_RECURSE
  "libaerie_lock.a"
)
