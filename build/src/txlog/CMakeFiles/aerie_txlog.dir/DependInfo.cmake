
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txlog/redo_log.cc" "src/txlog/CMakeFiles/aerie_txlog.dir/redo_log.cc.o" "gcc" "src/txlog/CMakeFiles/aerie_txlog.dir/redo_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aerie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/aerie_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
