file(REMOVE_RECURSE
  "CMakeFiles/aerie_txlog.dir/redo_log.cc.o"
  "CMakeFiles/aerie_txlog.dir/redo_log.cc.o.d"
  "libaerie_txlog.a"
  "libaerie_txlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_txlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
