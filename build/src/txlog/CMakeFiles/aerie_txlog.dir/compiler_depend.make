# Empty compiler generated dependencies file for aerie_txlog.
# This may be replaced when dependencies are built.
