file(REMOVE_RECURSE
  "libaerie_txlog.a"
)
