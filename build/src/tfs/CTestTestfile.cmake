# CMake generated Testfile for 
# Source directory: /root/repo/src/tfs
# Build directory: /root/repo/build/src/tfs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
