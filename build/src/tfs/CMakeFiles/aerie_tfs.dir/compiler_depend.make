# Empty compiler generated dependencies file for aerie_tfs.
# This may be replaced when dependencies are built.
