file(REMOVE_RECURSE
  "CMakeFiles/aerie_tfs.dir/fsck.cc.o"
  "CMakeFiles/aerie_tfs.dir/fsck.cc.o.d"
  "CMakeFiles/aerie_tfs.dir/ops.cc.o"
  "CMakeFiles/aerie_tfs.dir/ops.cc.o.d"
  "CMakeFiles/aerie_tfs.dir/service.cc.o"
  "CMakeFiles/aerie_tfs.dir/service.cc.o.d"
  "libaerie_tfs.a"
  "libaerie_tfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_tfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
