file(REMOVE_RECURSE
  "libaerie_tfs.a"
)
