
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernelsim/blockdev.cc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/blockdev.cc.o" "gcc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/blockdev.cc.o.d"
  "/root/repo/src/kernelsim/extsim.cc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/extsim.cc.o" "gcc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/extsim.cc.o.d"
  "/root/repo/src/kernelsim/journal.cc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/journal.cc.o" "gcc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/journal.cc.o.d"
  "/root/repo/src/kernelsim/ramfs.cc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/ramfs.cc.o" "gcc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/ramfs.cc.o.d"
  "/root/repo/src/kernelsim/vfs.cc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/vfs.cc.o" "gcc" "src/kernelsim/CMakeFiles/aerie_kernelsim.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aerie_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
