# Empty compiler generated dependencies file for aerie_kernelsim.
# This may be replaced when dependencies are built.
