file(REMOVE_RECURSE
  "CMakeFiles/aerie_kernelsim.dir/blockdev.cc.o"
  "CMakeFiles/aerie_kernelsim.dir/blockdev.cc.o.d"
  "CMakeFiles/aerie_kernelsim.dir/extsim.cc.o"
  "CMakeFiles/aerie_kernelsim.dir/extsim.cc.o.d"
  "CMakeFiles/aerie_kernelsim.dir/journal.cc.o"
  "CMakeFiles/aerie_kernelsim.dir/journal.cc.o.d"
  "CMakeFiles/aerie_kernelsim.dir/ramfs.cc.o"
  "CMakeFiles/aerie_kernelsim.dir/ramfs.cc.o.d"
  "CMakeFiles/aerie_kernelsim.dir/vfs.cc.o"
  "CMakeFiles/aerie_kernelsim.dir/vfs.cc.o.d"
  "libaerie_kernelsim.a"
  "libaerie_kernelsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_kernelsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
