file(REMOVE_RECURSE
  "libaerie_kernelsim.a"
)
