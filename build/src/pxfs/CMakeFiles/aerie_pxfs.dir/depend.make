# Empty dependencies file for aerie_pxfs.
# This may be replaced when dependencies are built.
