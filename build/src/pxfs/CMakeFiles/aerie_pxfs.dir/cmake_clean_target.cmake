file(REMOVE_RECURSE
  "libaerie_pxfs.a"
)
