file(REMOVE_RECURSE
  "CMakeFiles/aerie_pxfs.dir/pxfs.cc.o"
  "CMakeFiles/aerie_pxfs.dir/pxfs.cc.o.d"
  "libaerie_pxfs.a"
  "libaerie_pxfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_pxfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
