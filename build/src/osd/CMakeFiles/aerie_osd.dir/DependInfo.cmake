
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osd/buddy.cc" "src/osd/CMakeFiles/aerie_osd.dir/buddy.cc.o" "gcc" "src/osd/CMakeFiles/aerie_osd.dir/buddy.cc.o.d"
  "/root/repo/src/osd/collection.cc" "src/osd/CMakeFiles/aerie_osd.dir/collection.cc.o" "gcc" "src/osd/CMakeFiles/aerie_osd.dir/collection.cc.o.d"
  "/root/repo/src/osd/mfile.cc" "src/osd/CMakeFiles/aerie_osd.dir/mfile.cc.o" "gcc" "src/osd/CMakeFiles/aerie_osd.dir/mfile.cc.o.d"
  "/root/repo/src/osd/volume.cc" "src/osd/CMakeFiles/aerie_osd.dir/volume.cc.o" "gcc" "src/osd/CMakeFiles/aerie_osd.dir/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aerie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/scm/CMakeFiles/aerie_scm.dir/DependInfo.cmake"
  "/root/repo/build/src/txlog/CMakeFiles/aerie_txlog.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/aerie_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/aerie_rpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
