# Empty compiler generated dependencies file for aerie_osd.
# This may be replaced when dependencies are built.
