file(REMOVE_RECURSE
  "CMakeFiles/aerie_osd.dir/buddy.cc.o"
  "CMakeFiles/aerie_osd.dir/buddy.cc.o.d"
  "CMakeFiles/aerie_osd.dir/collection.cc.o"
  "CMakeFiles/aerie_osd.dir/collection.cc.o.d"
  "CMakeFiles/aerie_osd.dir/mfile.cc.o"
  "CMakeFiles/aerie_osd.dir/mfile.cc.o.d"
  "CMakeFiles/aerie_osd.dir/volume.cc.o"
  "CMakeFiles/aerie_osd.dir/volume.cc.o.d"
  "libaerie_osd.a"
  "libaerie_osd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_osd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
