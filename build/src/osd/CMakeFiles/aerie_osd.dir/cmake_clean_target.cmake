file(REMOVE_RECURSE
  "libaerie_osd.a"
)
