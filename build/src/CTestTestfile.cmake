# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("scm")
subdirs("txlog")
subdirs("rpc")
subdirs("lock")
subdirs("osd")
subdirs("tfs")
subdirs("libfs")
subdirs("pxfs")
subdirs("flatfs")
subdirs("kernelsim")
subdirs("workload")
