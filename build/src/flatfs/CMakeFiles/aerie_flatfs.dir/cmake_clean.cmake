file(REMOVE_RECURSE
  "CMakeFiles/aerie_flatfs.dir/flatfs.cc.o"
  "CMakeFiles/aerie_flatfs.dir/flatfs.cc.o.d"
  "libaerie_flatfs.a"
  "libaerie_flatfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_flatfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
