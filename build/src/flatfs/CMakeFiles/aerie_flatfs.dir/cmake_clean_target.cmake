file(REMOVE_RECURSE
  "libaerie_flatfs.a"
)
