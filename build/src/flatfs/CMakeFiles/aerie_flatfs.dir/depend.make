# Empty dependencies file for aerie_flatfs.
# This may be replaced when dependencies are built.
