file(REMOVE_RECURSE
  "CMakeFiles/mailstore.dir/mailstore.cpp.o"
  "CMakeFiles/mailstore.dir/mailstore.cpp.o.d"
  "mailstore"
  "mailstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
