# Empty dependencies file for mailstore.
# This may be replaced when dependencies are built.
