# Empty dependencies file for aerie_fsck.
# This may be replaced when dependencies are built.
