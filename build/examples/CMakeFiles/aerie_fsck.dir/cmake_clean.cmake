file(REMOVE_RECURSE
  "CMakeFiles/aerie_fsck.dir/aerie_fsck.cpp.o"
  "CMakeFiles/aerie_fsck.dir/aerie_fsck.cpp.o.d"
  "aerie_fsck"
  "aerie_fsck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aerie_fsck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
