file(REMOVE_RECURSE
  "CMakeFiles/webproxy_cache.dir/webproxy_cache.cpp.o"
  "CMakeFiles/webproxy_cache.dir/webproxy_cache.cpp.o.d"
  "webproxy_cache"
  "webproxy_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webproxy_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
