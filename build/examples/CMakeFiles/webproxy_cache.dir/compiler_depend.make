# Empty compiler generated dependencies file for webproxy_cache.
# This may be replaced when dependencies are built.
