# Empty dependencies file for shared_editor.
# This may be replaced when dependencies are built.
