file(REMOVE_RECURSE
  "CMakeFiles/shared_editor.dir/shared_editor.cpp.o"
  "CMakeFiles/shared_editor.dir/shared_editor.cpp.o.d"
  "shared_editor"
  "shared_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
